"""AST lint engine: one parse per file, rule dispatch, pragmas, baselines.

The engine parses each source file exactly once (``ast.parse`` plus one
``tokenize`` pass for suppression pragmas) and dispatches every node to
the rules that registered interest in its type, so adding a rule costs
one method call per matching node, not another tree traversal. Three
layers of noise control keep the gate usable as the tree grows:

* **pragmas** — ``# repro: noqa[RL001,RL005] - justification`` on the
  flagged line suppresses exactly those rule ids there (blanket
  suppression is deliberately unsupported: every exemption names the
  invariant it waives);
* **baselines** — a committed JSON file of grandfathered findings
  (matched by ``(path, rule, message)`` so unrelated edits do not churn
  line numbers) lets a new rule land strict while old debt is paid off;
* **selection** — ``--select``/``--ignore`` restrict the active rule
  set for focused runs.

Files that fail to parse or read are reported under the reserved id
:data:`PARSE_RULE_ID` rather than crashing the sweep.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "BASELINE_VERSION",
    "FileLint",
    "Finding",
    "LintEngine",
    "LintReport",
    "PARSE_RULE_ID",
    "Rule",
    "all_rule_classes",
    "format_human",
    "format_json",
    "load_baseline",
    "register",
    "resolve_rules",
    "write_baseline",
]

#: Reserved id for "the file could not be parsed/read at all".
PARSE_RULE_ID = "RL000"

#: Schema version of both the baseline file and the JSON output.
BASELINE_VERSION = 1

_RULE_ID_RE = re.compile(r"^RL\d{3}$")
_PRAGMA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def render(self):
        """``path:line:col: RLxxx message`` (col is 1-based for humans)."""
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule} {self.message}")

    def to_dict(self):
        """JSON-ready mapping (documented in docs/static-analysis.md)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    @property
    def baseline_key(self):
        """Line-independent identity used for baseline matching."""
        return (self.path, self.rule, self.message)


# ---------------------------------------------------------------------------
# Rule registry


_REGISTRY = {}


def register(cls):
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not _RULE_ID_RE.match(cls.id) or cls.id == PARSE_RULE_ID:
        raise ValueError(f"rule id {cls.id!r} must match RL0xx (not RL000)")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rule_classes():
    """Registered rule classes, sorted by id."""
    return [cls for _, cls in sorted(_REGISTRY.items())]


def resolve_rules(select=None, ignore=None):
    """Instantiate the active rule set from ``--select``/``--ignore`` ids.

    Unknown ids raise :class:`ValueError` — a typo that silently
    selected nothing would report a misleadingly clean tree.
    """
    known = set(_REGISTRY)
    requested = set(select or ()) | set(ignore or ())
    unknown = sorted(requested - known)
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    active = set(known)
    if select:
        active &= set(select)
    if ignore:
        active -= set(ignore)
    return [_REGISTRY[rule_id]() for rule_id in sorted(active)]


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (``RL0xx``), ``title`` (short slug), a
    ``rationale`` (one paragraph for ``--list-rules`` and the docs),
    ``severity`` and ``node_types`` — the AST node classes the engine
    dispatches to :meth:`visit`. The shared traversal means a rule never
    walks the tree itself; it inspects the node it is handed (plus
    ``ctx.ancestors`` for enclosing scopes) and yields findings.
    """

    id = PARSE_RULE_ID
    title = ""
    rationale = ""
    severity = "error"
    node_types = ()

    def visit(self, node, ctx):
        """Yield :class:`Finding` objects for one dispatched node."""
        return ()

    def finding(self, ctx, node, message):
        """Build a finding anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            severity=self.severity,
            message=message,
        )


class ModuleContext:
    """Per-file state shared by all rules during the single traversal."""

    #: Node types that start a new variable scope: loop-enclosure
    #: queries stop at these.
    _SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                    ast.ClassDef, ast.Module)

    def __init__(self, path, text, tree):
        self.path = path
        self.text = text
        self.tree = tree
        #: Ancestor chain of the node currently being visited
        #: (outermost first, excluding the node itself).
        self.ancestors = []

    def enclosing_loops(self):
        """``for``/``while`` nodes around the current node, innermost
        first, within the nearest enclosing function/class scope."""
        loops = []
        for node in reversed(self.ancestors):
            if isinstance(node, self._SCOPE_TYPES):
                break
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                loops.append(node)
        return loops


class _Dispatcher:
    """Single traversal that feeds each node to interested rules."""

    def __init__(self, rules, ctx, out):
        self._by_type = {}
        for rule in rules:
            for node_type in rule.node_types:
                self._by_type.setdefault(node_type, []).append(rule)
        self._ctx = ctx
        self._out = out

    def run(self, tree):
        self._visit(tree)

    def _visit(self, node):
        for rule in self._by_type.get(type(node), ()):
            self._out.extend(rule.visit(node, self._ctx))
        self._ctx.ancestors.append(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)
        self._ctx.ancestors.pop()


# ---------------------------------------------------------------------------
# Suppression pragmas


def _suppressions(text):
    """Map ``line -> {rule ids}`` from ``# repro: noqa[...]`` pragmas.

    Comments are found with :mod:`tokenize`, so the pragma syntax
    appearing inside a string literal or docstring does not suppress
    anything.
    """
    out = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            ids = {part.strip().upper()
                   for part in match.group(1).split(",") if part.strip()}
            out.setdefault(tok.start[0], set()).update(ids)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable files are reported as RL000 elsewhere
    return out


@dataclass
class FileLint:
    """Result of linting one file (or text snippet)."""

    findings: list = field(default_factory=list)
    suppressed: int = 0


# ---------------------------------------------------------------------------
# Baselines


def load_baseline(path):
    """Load a baseline file into a matchable counter.

    Raises
    ------
    OSError
        The file cannot be read.
    ValueError
        The file is not valid baseline JSON.
    """
    raw = Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path}: invalid JSON ({exc})") from exc
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"baseline {path}: expected an object with a "
                         "'findings' list")
    counter = Counter()
    for entry in data["findings"]:
        try:
            counter[(entry["path"], entry["rule"], entry["message"])] += 1
        except (TypeError, KeyError) as exc:
            raise ValueError(
                f"baseline {path}: entry {entry!r} lacks path/rule/message"
            ) from exc
    return counter


def write_baseline(path, findings):
    """Write ``findings`` as a baseline file (sorted, deterministic)."""
    entries = [
        {"path": f.path, "rule": f.rule, "message": f.message}
        for f in sorted(findings)
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return len(entries)


# ---------------------------------------------------------------------------
# Engine


@dataclass
class LintReport:
    """Aggregate result of a lint run over many files."""

    findings: list = field(default_factory=list)
    files_checked: int = 0
    suppressed_pragma: int = 0
    suppressed_baseline: int = 0

    @property
    def ok(self):
        return not self.findings

    def counts(self):
        """``{rule id: finding count}`` for the unsuppressed findings."""
        return dict(sorted(Counter(f.rule for f in self.findings).items()))

    def to_dict(self):
        """The documented JSON output schema."""
        return {
            "version": BASELINE_VERSION,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts(),
            "suppressed": {
                "pragma": self.suppressed_pragma,
                "baseline": self.suppressed_baseline,
            },
        }


class LintEngine:
    """Run a rule set over texts, files, or whole trees."""

    def __init__(self, select=None, ignore=None, rules=None):
        if rules is not None:
            self.rules = list(rules)
        else:
            self.rules = resolve_rules(select=select, ignore=ignore)

    # -- single text / file ------------------------------------------------

    def lint_text(self, text, path="<snippet>"):
        """Lint one source string; returns a :class:`FileLint`."""
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            finding = Finding(
                path=path, line=exc.lineno or 1,
                col=max((exc.offset or 1) - 1, 0), rule=PARSE_RULE_ID,
                severity="error",
                message=f"file does not parse: {exc.msg}",
            )
            return FileLint(findings=[finding])
        ctx = ModuleContext(path, text, tree)
        raw = []
        _Dispatcher(self.rules, ctx, raw).run(tree)
        pragmas = _suppressions(text)
        result = FileLint()
        for finding in sorted(raw):
            if finding.rule in pragmas.get(finding.line, ()):
                result.suppressed += 1
            else:
                result.findings.append(finding)
        return result

    def lint_file(self, path, display=None):
        """Lint one file; unreadable files become RL000 findings."""
        display = display or _display_path(path)
        try:
            text = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            finding = Finding(
                path=display, line=1, col=0, rule=PARSE_RULE_ID,
                severity="error", message=f"file cannot be read: {exc}",
            )
            return FileLint(findings=[finding])
        return self.lint_text(text, path=display)

    # -- trees -------------------------------------------------------------

    def lint_paths(self, paths, baseline=None):
        """Lint files and/or directories; returns a :class:`LintReport`.

        Parameters
        ----------
        paths : iterable of path-like
            Files are linted directly; directories are expanded through
            :func:`repro.lint.walk.walk_source_tree`.
        baseline : Counter or None
            Grandfathered findings (from :func:`load_baseline`); each
            baseline entry absorbs at most one matching finding.
        """
        from .walk import walk_source_tree

        files = []
        seen = set()
        for path in paths:
            path = Path(path)
            expanded = walk_source_tree(path) if path.is_dir() else [path]
            for item in expanded:
                resolved = Path(item).resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    files.append(item)
        report = LintReport(files_checked=len(files))
        findings = []
        for item in files:
            result = self.lint_file(item)
            findings.extend(result.findings)
            report.suppressed_pragma += result.suppressed
        if baseline:
            remaining = Counter(baseline)
            for finding in findings:
                if remaining[finding.baseline_key] > 0:
                    remaining[finding.baseline_key] -= 1
                    report.suppressed_baseline += 1
                else:
                    report.findings.append(finding)
        else:
            report.findings = findings
        report.findings.sort()
        return report


def _display_path(path):
    """Stable repo-relative display path (posix), falling back sanely."""
    from .walk import REPO_ROOT

    resolved = Path(path).resolve()
    for anchor in (REPO_ROOT, Path.cwd()):
        try:
            return resolved.relative_to(anchor).as_posix()
        except ValueError:
            continue
    return resolved.as_posix()


# ---------------------------------------------------------------------------
# Output formats


def format_human(report):
    """One line per finding plus a summary, ready to print."""
    lines = [finding.render() for finding in report.findings]
    suppressed = []
    if report.suppressed_pragma:
        suppressed.append(f"{report.suppressed_pragma} pragma-suppressed")
    if report.suppressed_baseline:
        suppressed.append(f"{report.suppressed_baseline} baselined")
    tail = f" ({', '.join(suppressed)})" if suppressed else ""
    lines.append(f"checked {report.files_checked} file(s): "
                 f"{len(report.findings)} finding(s){tail}")
    return "\n".join(lines)


def format_json(report):
    """The documented JSON schema, indented and newline-terminated."""
    return json.dumps(report.to_dict(), indent=2)

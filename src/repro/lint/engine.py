"""Two-pass AST lint engine: per-file rules, whole-program rules, cache.

**Pass 1** parses each source file exactly once (``ast.parse`` plus one
``tokenize`` pass for suppression pragmas) and dispatches every node to
the rules that registered interest in its type, so adding a per-file
rule costs one method call per matching node, not another traversal.
Alongside the dispatch, every rule's :meth:`Rule.collect` hook may
export JSON-safe *facts* about the file (imports, exports, raise sites,
metric names, …).

**Pass 2** assembles the per-file facts into a
:class:`~repro.lint.index.ProgramIndex` — module graph, import-time
closure, docs corpus — and runs every rule's
:meth:`Rule.check_program` hook against it. This is where the
cross-module rules (``RL012``–``RL017``) live: fork-safety of the pool
workers' import closure, lock discipline in the threaded serve layer,
metric-name consistency against the canonical catalog.

Pass 1 results are memoised in an incremental cache
(:class:`~repro.lint.cache.LintCache`) keyed by content sha and a
rule-catalog hash, so a warm whole-tree lint skips parsing entirely;
pass 2 always runs live on the (cached) facts.

Three layers of noise control keep the gate usable as the tree grows:

* **pragmas** — ``# repro: noqa[RL001,RL005] - justification`` on the
  flagged line suppresses exactly those rule ids there (blanket
  suppression is deliberately unsupported: every exemption names the
  invariant it waives). A pragma that suppresses nothing is itself
  reported under :data:`DEAD_PRAGMA_RULE_ID`, so the exemption audit
  can never rot;
* **baselines** — a committed JSON file of grandfathered findings
  (matched by ``(path, rule, message)`` so unrelated edits do not churn
  line numbers) lets a new rule land strict while old debt is paid off;
* **selection** — ``--select``/``--ignore`` restrict the active rule
  set for focused runs.

Files that fail to parse or read are reported under the reserved id
:data:`PARSE_RULE_ID` rather than crashing the sweep.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .index import ModuleRecord, ProgramIndex, module_name_for_path

__all__ = [
    "BASELINE_VERSION",
    "DEAD_PRAGMA_RULE_ID",
    "FileLint",
    "Finding",
    "LintEngine",
    "LintReport",
    "PARSE_RULE_ID",
    "Rule",
    "all_rule_classes",
    "format_github",
    "format_human",
    "format_json",
    "load_baseline",
    "register",
    "resolve_rules",
    "write_baseline",
]

#: Reserved id for "the file could not be parsed/read at all".
PARSE_RULE_ID = "RL000"

#: The dead-pragma meta rule: a noqa pragma whose declared ids never
#: fire on that line is itself a finding (the rule class lives in
#: ``rules/program.py``; the detection is engine-owned because only the
#: engine sees which pragmas were consumed).
DEAD_PRAGMA_RULE_ID = "RL018"

#: Schema version of both the baseline file and the JSON output.
BASELINE_VERSION = 1

_RULE_ID_RE = re.compile(r"^RL\d{3}$")
_PRAGMA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def render(self):
        """``path:line:col: RLxxx message`` (col is 1-based for humans)."""
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule} {self.message}")

    def render_github(self):
        """A GitHub Actions ``::error`` workflow annotation line."""
        message = self.message.replace("%", "%25").replace("\n", "%0A")
        return (f"::error file={self.path},line={self.line},"
                f"col={self.col + 1},title={self.rule}::{message}")

    def to_dict(self):
        """JSON-ready mapping (documented in docs/static-analysis.md)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    @property
    def baseline_key(self):
        """Line-independent identity used for baseline matching."""
        return (self.path, self.rule, self.message)


# ---------------------------------------------------------------------------
# Rule registry


_REGISTRY = {}


def register(cls):
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not _RULE_ID_RE.match(cls.id) or cls.id == PARSE_RULE_ID:
        raise ValueError(f"rule id {cls.id!r} must match RL0xx (not RL000)")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rule_classes():
    """Registered rule classes, sorted by id."""
    return [cls for _, cls in sorted(_REGISTRY.items())]


def resolve_rules(select=None, ignore=None):
    """Instantiate the active rule set from ``--select``/``--ignore`` ids.

    Unknown ids raise :class:`ValueError` — a typo that silently
    selected nothing would report a misleadingly clean tree.
    """
    known = set(_REGISTRY)
    requested = set(select or ()) | set(ignore or ())
    unknown = sorted(requested - known)
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    active = set(known)
    if select:
        active &= set(select)
    if ignore:
        active -= set(ignore)
    return [_REGISTRY[rule_id]() for rule_id in sorted(active)]


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (``RL0xx``), ``title`` (short slug), a
    ``rationale`` (one paragraph for ``--list-rules`` and the docs),
    ``severity`` and ``node_types`` — the AST node classes the engine
    dispatches to :meth:`visit` during the shared pass-1 traversal.

    Cross-module rules additionally implement :meth:`collect` — export
    JSON-safe facts about one file — and :meth:`check_program` — yield
    findings against the assembled :class:`ProgramIndex`. A rule may be
    purely whole-program (``node_types = ()``), purely per-file, or
    both.
    """

    id = PARSE_RULE_ID
    title = ""
    rationale = ""
    severity = "error"
    node_types = ()

    def visit(self, node, ctx):
        """Yield :class:`Finding` objects for one dispatched node."""
        return ()

    def collect(self, ctx):
        """Pass-1 fact extraction: return a JSON-safe value (or None).

        Whatever is returned is cached with the file and later exposed
        through :meth:`ProgramIndex.facts`, keyed by this rule's id —
        so it must survive a JSON round-trip (lists, dicts with string
        keys, scalars).
        """
        return None

    def check_program(self, index):
        """Pass-2 hook: yield findings against the whole-program index."""
        return ()

    def finding(self, ctx, node, message):
        """Build a finding anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            severity=self.severity,
            message=message,
        )

    def program_finding(self, path, line, message, col=0):
        """Build a pass-2 finding at an explicit location (facts carry
        their own line numbers; there is no live AST node by then)."""
        return Finding(
            path=path, line=int(line), col=int(col), rule=self.id,
            severity=self.severity, message=message,
        )


class ModuleContext:
    """Per-file state shared by all rules during the single traversal."""

    #: Node types that start a new variable scope: loop-enclosure
    #: queries stop at these.
    _SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                    ast.ClassDef, ast.Module)

    def __init__(self, path, text, tree):
        self.path = path
        self.text = text
        self.tree = tree
        #: Ancestor chain of the node currently being visited
        #: (outermost first, excluding the node itself).
        self.ancestors = []

    def enclosing_loops(self):
        """``for``/``while`` nodes around the current node, innermost
        first, within the nearest enclosing function/class scope."""
        loops = []
        for node in reversed(self.ancestors):
            if isinstance(node, self._SCOPE_TYPES):
                break
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                loops.append(node)
        return loops


class _Dispatcher:
    """Single traversal that feeds each node to interested rules."""

    def __init__(self, rules, ctx, out):
        self._by_type = {}
        for rule in rules:
            for node_type in rule.node_types:
                self._by_type.setdefault(node_type, []).append(rule)
        self._ctx = ctx
        self._out = out

    def run(self, tree):
        self._visit(tree)

    def _visit(self, node):
        for rule in self._by_type.get(type(node), ()):
            self._out.extend(rule.visit(node, self._ctx))
        self._ctx.ancestors.append(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)
        self._ctx.ancestors.pop()


# ---------------------------------------------------------------------------
# Suppression pragmas


def _suppressions(text):
    """Map ``line -> {rule ids}`` from ``# repro: noqa[...]`` pragmas.

    Comments are found with :mod:`tokenize`, so the pragma syntax
    appearing inside a string literal or docstring does not suppress
    anything.
    """
    out = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            ids = {part.strip().upper()
                   for part in match.group(1).split(",") if part.strip()}
            out.setdefault(tok.start[0], set()).update(ids)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable files are reported as RL000 elsewhere
    return out


@dataclass
class FileLint:
    """Result of linting one file (or text snippet)."""

    findings: list = field(default_factory=list)
    suppressed: int = 0


# ---------------------------------------------------------------------------
# Baselines


def load_baseline(path):
    """Load a baseline file into a matchable counter.

    Raises
    ------
    OSError
        The file cannot be read.
    ValueError
        The file is not valid baseline JSON.
    """
    raw = Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path}: invalid JSON ({exc})") from exc
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"baseline {path}: expected an object with a "
                         "'findings' list")
    counter = Counter()
    for entry in data["findings"]:
        try:
            counter[(entry["path"], entry["rule"], entry["message"])] += 1
        except (TypeError, KeyError) as exc:
            raise ValueError(
                f"baseline {path}: entry {entry!r} lacks path/rule/message"
            ) from exc
    return counter


def write_baseline(path, findings):
    """Write ``findings`` as a baseline file (sorted, deterministic)."""
    entries = [
        {"path": f.path, "rule": f.rule, "message": f.message}
        for f in sorted(findings)
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return len(entries)


def prune_baseline(baseline, linted_paths, findings):
    """Merge semantics for ``--update-baseline``.

    The rewritten baseline is: the current findings for the files this
    run linted, plus the old entries for files *outside* this run that
    still exist on disk. Entries for deleted or renamed files are
    dropped instead of being carried forever, and updating from a
    partial path set no longer erases the rest of the baseline.

    Parameters
    ----------
    baseline : Counter or None
        The previously loaded baseline (``(path, rule, message)`` ->
        count), or None when starting fresh.
    linted_paths : set of str
        Display paths of the files this run analysed.
    findings : iterable of Finding
        The run's unsuppressed findings.

    Returns
    -------
    list of Finding
        Entries ready for :func:`write_baseline`.
    """
    from .walk import REPO_ROOT

    merged = list(findings)
    for (path, rule, message), count in (baseline or {}).items():
        if path in linted_paths:
            continue  # superseded by this run's findings (possibly none)
        candidate = Path(path)
        exists = (candidate.is_file() if candidate.is_absolute()
                  else ((REPO_ROOT / path).is_file()
                        or (Path.cwd() / path).is_file()))
        if not exists:
            continue  # deleted or renamed: prune
        merged.extend([Finding(path=path, line=1, col=0, rule=rule,
                               severity="error", message=message)] * count)
    return merged


# ---------------------------------------------------------------------------
# Engine


@dataclass
class LintReport:
    """Aggregate result of a lint run over many files."""

    findings: list = field(default_factory=list)
    files_checked: int = 0
    suppressed_pragma: int = 0
    suppressed_baseline: int = 0

    @property
    def ok(self):
        return not self.findings

    def counts(self):
        """``{rule id: finding count}`` for the unsuppressed findings."""
        return dict(sorted(Counter(f.rule for f in self.findings).items()))

    def to_dict(self):
        """The documented JSON output schema."""
        return {
            "version": BASELINE_VERSION,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts(),
            "suppressed": {
                "pragma": self.suppressed_pragma,
                "baseline": self.suppressed_baseline,
            },
        }


class LintEngine:
    """Run a rule set over texts, files, or whole trees."""

    def __init__(self, select=None, ignore=None, rules=None):
        if rules is not None:
            self.rules = list(rules)
        else:
            self.rules = resolve_rules(select=select, ignore=ignore)

    @property
    def active_ids(self):
        return sorted(r.id for r in self.rules)

    # -- pass 1: one file --------------------------------------------------

    def analyze_text(self, text, path="<snippet>"):
        """Parse + per-file rules + fact extraction for one source text.

        Returns a JSON-safe record — exactly what the incremental cache
        stores per file: raw (pre-pragma) findings, the pragma map, the
        per-rule facts, and the import declarations the program index
        needs.
        """
        record = {"findings": [], "suppressions": {}, "facts": {},
                  "imports": []}
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            record["findings"].append(Finding(
                path=path, line=exc.lineno or 1,
                col=max((exc.offset or 1) - 1, 0), rule=PARSE_RULE_ID,
                severity="error",
                message=f"file does not parse: {exc.msg}",
            ).to_dict())
            return record
        ctx = ModuleContext(path, text, tree)
        raw = []
        _Dispatcher(self.rules, ctx, raw).run(tree)
        record["findings"] = [f.to_dict() for f in sorted(raw)]
        record["suppressions"] = {
            str(line): sorted(ids)
            for line, ids in _suppressions(text).items()
        }
        for rule in self.rules:
            facts = rule.collect(ctx)
            if facts is not None:
                record["facts"][rule.id] = facts
        record["imports"] = _collect_imports(tree)
        return record

    def lint_text(self, text, path="<snippet>"):
        """Lint one source string; returns a :class:`FileLint`.

        Per-file rules only — the whole-program pass needs a tree
        (:meth:`lint_paths`).
        """
        record = self.analyze_text(text, path=path)
        suppressions = {int(line): set(ids)
                        for line, ids in record["suppressions"].items()}
        result = FileLint()
        for entry in record["findings"]:
            finding = Finding(**entry)
            if finding.rule in suppressions.get(finding.line, ()):
                result.suppressed += 1
            else:
                result.findings.append(finding)
        return result

    def lint_file(self, path, display=None):
        """Lint one file; unreadable files become RL000 findings."""
        display = display or _display_path(path)
        try:
            text = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            finding = Finding(
                path=display, line=1, col=0, rule=PARSE_RULE_ID,
                severity="error", message=f"file cannot be read: {exc}",
            )
            return FileLint(findings=[finding])
        return self.lint_text(text, path=display)

    # -- pass 1 + pass 2: trees --------------------------------------------

    def lint_paths(self, paths, baseline=None, cache=None, docs_corpus=None):
        """Lint files and/or directories; returns a :class:`LintReport`.

        Parameters
        ----------
        paths : iterable of path-like
            Files are linted directly; directories are expanded through
            :func:`repro.lint.walk.walk_source_tree`.
        baseline : Counter or None
            Grandfathered findings (from :func:`load_baseline`); each
            baseline entry absorbs at most one matching finding.
        cache : LintCache or None
            Incremental cache for pass-1 results; hit entries skip
            parsing entirely. The cache is saved (atomically) before
            returning.
        docs_corpus : str or None
            Text the dead-export rule accepts as usage evidence; None
            loads the repo's hand-written docs plus test/tool sources
            (:func:`repro.lint.walk.evidence_corpus`).
        """
        from .cache import content_sha
        from .walk import evidence_corpus, walk_source_tree

        files = []
        seen = set()
        for path in paths:
            path = Path(path)
            expanded = walk_source_tree(path) if path.is_dir() else [path]
            for item in expanded:
                resolved = Path(item).resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    files.append(item)

        report = LintReport(files_checked=len(files))
        entries = []  # (display, analysis record)
        for item in files:
            display = _display_path(item)
            try:
                text = Path(item).read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                entries.append((display, {
                    "findings": [Finding(
                        path=display, line=1, col=0, rule=PARSE_RULE_ID,
                        severity="error",
                        message=f"file cannot be read: {exc}",
                    ).to_dict()],
                    "suppressions": {}, "facts": {}, "imports": [],
                    "module": Path(item).stem, "is_package": False,
                }))
                continue
            sha = content_sha(text)
            entry = cache.lookup(display, sha) if cache is not None else None
            if entry is None or entry.get("rules") != self.active_ids:
                entry = self.analyze_text(text, path=display)
                module, is_package = module_name_for_path(item)
                entry["module"] = module
                entry["is_package"] = bool(is_package)
                entry["sha"] = sha
                entry["rules"] = self.active_ids
                if cache is not None:
                    cache.store(display, entry)
            entries.append((display, entry))

        # pass 2: assemble the index and run the cross-module rules
        if docs_corpus is None:
            docs_corpus = evidence_corpus()
        records = [
            ModuleRecord(
                path=display, name=entry.get("module") or Path(display).stem,
                is_package=entry.get("is_package", False),
                facts=entry.get("facts") or {},
                imports=entry.get("imports") or [],
            )
            for display, entry in entries
        ]
        index = ProgramIndex(records, docs_corpus=docs_corpus)
        findings = []
        for display, entry in entries:
            findings.extend(Finding(**f) for f in entry["findings"])
        for rule in self.rules:
            findings.extend(rule.check_program(index))

        # apply pragmas over both passes, tracking which ids they used
        suppressions = {}
        for display, entry in entries:
            per_line = {int(line): set(ids)
                        for line, ids in entry["suppressions"].items()}
            if per_line:
                suppressions[display] = per_line
        used = set()
        surviving = []
        for finding in findings:
            declared = suppressions.get(finding.path, {}).get(finding.line,
                                                              ())
            if finding.rule in declared:
                report.suppressed_pragma += 1
                used.add((finding.path, finding.line, finding.rule))
            else:
                surviving.append(finding)
        surviving.extend(self._dead_pragmas(suppressions, used, report))

        # baseline last: it grandfathers pragma-surviving findings only
        if baseline:
            remaining = Counter(baseline)
            for finding in surviving:
                if remaining[finding.baseline_key] > 0:
                    remaining[finding.baseline_key] -= 1
                    report.suppressed_baseline += 1
                else:
                    report.findings.append(finding)
        else:
            report.findings = surviving
        report.findings.sort()
        if cache is not None:
            cache.save()
        report.linted_paths = {display for display, _ in entries}
        return report

    def _dead_pragmas(self, suppressions, used, report):
        """Findings for pragma ids that suppressed nothing this run.

        Only judged for ids in the active rule set (a ``--select
        RL003`` run cannot tell whether an RL011 pragma is live), plus
        ids that are not registered rules at all (those can *never*
        suppress — a typo'd pragma is silent debt). A dead-pragma
        finding is itself suppressible by naming
        :data:`DEAD_PRAGMA_RULE_ID` in the same pragma.
        """
        active = set(self.active_ids)
        if DEAD_PRAGMA_RULE_ID not in active:
            return []
        known = set(_REGISTRY)
        out = []
        for path, per_line in suppressions.items():
            for line, declared in per_line.items():
                dead_suppressed = False
                for rule_id in sorted(declared):
                    if rule_id == DEAD_PRAGMA_RULE_ID:
                        continue
                    if rule_id in known and (rule_id not in active
                                             or (path, line, rule_id) in used):
                        continue
                    reason = ("names unknown rule id"
                              if rule_id not in known
                              else "suppresses nothing here")
                    finding = Finding(
                        path=path, line=line, col=0,
                        rule=DEAD_PRAGMA_RULE_ID, severity="error",
                        message=(f"dead pragma: noqa[{rule_id}] "
                                 f"{reason}; remove it or fix the rule id"),
                    )
                    if DEAD_PRAGMA_RULE_ID in declared:
                        report.suppressed_pragma += 1
                        dead_suppressed = True
                    else:
                        out.append(finding)
                if (DEAD_PRAGMA_RULE_ID in declared and not dead_suppressed
                        and not self._line_used(used, path, line, declared)):
                    out.append(Finding(
                        path=path, line=line, col=0,
                        rule=DEAD_PRAGMA_RULE_ID, severity="error",
                        message=(f"dead pragma: noqa[{DEAD_PRAGMA_RULE_ID}] "
                                 "suppresses nothing here; remove it or fix "
                                 "the rule id"),
                    ))
        return out

    @staticmethod
    def _line_used(used, path, line, declared):
        """True when any declared id on this line consumed a finding."""
        return any((path, line, rule_id) in used for rule_id in declared)


def _collect_imports(tree):
    """JSON-safe import declarations for the program index.

    ``toplevel`` marks statements that execute at import time (not
    nested in a function/lambda) — the set the fork-safety closure
    follows. Class bodies *do* execute at import, so they count.
    """
    out = []
    func_spans = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            func_spans.append((node.lineno, node.end_lineno or node.lineno))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.append({
                    "module": alias.name, "names": [], "level": 0,
                    "toplevel": _outside(func_spans, node.lineno),
                    "line": node.lineno,
                })
        elif isinstance(node, ast.ImportFrom):
            out.append({
                "module": node.module or "",
                "names": [a.name for a in node.names if a.name != "*"],
                "level": node.level or 0,
                "toplevel": _outside(func_spans, node.lineno),
                "line": node.lineno,
            })
    return out


def _outside(spans, line):
    """True when ``line`` falls outside every function span."""
    return not any(start < line <= end for start, end in spans
                   if start != line)


def _display_path(path):
    """Stable repo-relative display path (posix), falling back sanely."""
    from .walk import REPO_ROOT

    resolved = Path(path).resolve()
    for anchor in (REPO_ROOT, Path.cwd()):
        try:
            return resolved.relative_to(anchor).as_posix()
        except ValueError:
            continue
    return resolved.as_posix()


# ---------------------------------------------------------------------------
# Output formats


def format_human(report):
    """One line per finding plus a summary, ready to print."""
    lines = [finding.render() for finding in report.findings]
    suppressed = []
    if report.suppressed_pragma:
        suppressed.append(f"{report.suppressed_pragma} pragma-suppressed")
    if report.suppressed_baseline:
        suppressed.append(f"{report.suppressed_baseline} baselined")
    tail = f" ({', '.join(suppressed)})" if suppressed else ""
    lines.append(f"checked {report.files_checked} file(s): "
                 f"{len(report.findings)} finding(s){tail}")
    return "\n".join(lines)


def format_json(report):
    """The documented JSON schema, indented and newline-terminated."""
    return json.dumps(report.to_dict(), indent=2)


def format_github(report):
    """GitHub Actions workflow annotations: one ``::error`` per finding.

    The summary goes on a plain last line (annotations are only emitted
    for findings, so a clean run prints just the summary).
    """
    lines = [finding.render_github() for finding in report.findings]
    lines.append(f"checked {report.files_checked} file(s): "
                 f"{len(report.findings)} finding(s)")
    return "\n".join(lines)

"""Incremental per-file cache for the two-pass lint engine.

Pass 1 (parse + per-file rules + fact extraction) dominates the cost of
a whole-tree lint, and its result for one file depends only on that
file's bytes and on the rule catalog itself. This module memoises it:

* each entry is keyed by the file's **content sha256**, so any edit —
  including a rename, since entries are stored per display path —
  invalidates exactly the files it touched;
* the whole cache is keyed by a **rule-catalog hash**: the sha256 of
  the lint package's own source files. Editing any rule, the engine,
  or the walk policy silently discards every entry and forces a full
  re-analysis — a stale rule result can never masquerade as a clean
  file;
* writes are **atomic** (temp file + ``os.replace``, the same
  write-then-replace discipline as ``RunJournal`` and the model
  registry), with a pid- and thread-suffixed temp name so concurrent
  ``repro lint`` invocations cannot tear each other's cache — last
  writer wins, both leave valid JSON behind;
* a corrupt or unreadable cache file is *ignored*, never fatal: the
  engine re-analyses from scratch and rewrites it.

Pass 2 (the cross-module rules) always runs live — it is cheap, works
on the cached facts, and its findings depend on the whole tree, not on
one file.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

__all__ = ["CACHE_VERSION", "LintCache", "content_sha", "rule_catalog_hash"]

#: Schema version of the cache file; bumping it discards old caches.
CACHE_VERSION = 1

_catalog_hash_memo = {}


def content_sha(text):
    """sha256 hex digest of one file's source text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def rule_catalog_hash():
    """sha256 over the lint package's own sources.

    Any change to the engine, the rules, the walk policy, or this
    module changes the hash, so cached pass-1 results can never
    outlive the code that produced them.
    """
    package_dir = Path(__file__).resolve().parent
    if package_dir in _catalog_hash_memo:
        return _catalog_hash_memo[package_dir]
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(package_dir).as_posix().encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    value = digest.hexdigest()
    _catalog_hash_memo[package_dir] = value
    return value


class LintCache:
    """Load/lookup/store per-file pass-1 results, saved atomically.

    Parameters
    ----------
    path : path-like
        The JSON cache file. A missing, corrupt, or version/catalog
        mismatched file behaves as an empty cache.
    catalog_hash : str or None
        Override for the rule-catalog hash (tests use this to prove a
        catalog bump discards entries); default is
        :func:`rule_catalog_hash`.
    """

    def __init__(self, path, catalog_hash=None):
        self.path = Path(path)
        self.catalog_hash = catalog_hash or rule_catalog_hash()
        #: Cache-effectiveness counters for this run (tests and the
        #: benchmark read them; they are not part of the JSON output).
        self.hits = 0
        self.misses = 0
        #: True when the last save failed (read-only cache location);
        #: lint results are unaffected, only warm-run speed is lost.
        self.degraded = False
        self._entries = self._load()
        self._touched = {}

    def _load(self):
        try:
            raw = self.path.read_text(encoding="utf-8")
            data = json.loads(raw)
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict):
            return {}
        if data.get("version") != CACHE_VERSION:
            return {}
        if data.get("catalog") != self.catalog_hash:
            return {}
        files = data.get("files")
        return dict(files) if isinstance(files, dict) else {}

    # -- per-file API ------------------------------------------------------

    def lookup(self, display, sha):
        """The cached entry for ``display`` when its sha matches."""
        entry = self._entries.get(display)
        if (isinstance(entry, dict) and entry.get("sha") == sha
                and self._well_formed(entry)):
            self.hits += 1
            self._touched[display] = entry
            return entry
        self.misses += 1
        return None

    @staticmethod
    def _well_formed(entry):
        """Minimal shape check so one corrupt entry is skipped, not
        fatal (everything else in the file stays usable)."""
        return (isinstance(entry.get("findings"), list)
                and isinstance(entry.get("suppressions"), dict)
                and isinstance(entry.get("facts"), dict)
                and isinstance(entry.get("imports"), list)
                and isinstance(entry.get("module"), str))

    def store(self, display, entry):
        """Record a freshly analysed file for the next :meth:`save`."""
        self._touched[display] = entry

    # -- persistence -------------------------------------------------------

    def save(self):
        """Merge this run's entries over the old ones and write atomically.

        Entries for files this run did not touch are kept only while
        their file still exists on disk, so deleted or renamed files do
        not accumulate forever. A failed write flips
        :attr:`degraded` and is otherwise ignored — the cache is an
        accelerator, not a correctness layer.
        """
        merged = {}
        for display, entry in self._entries.items():
            if display in self._touched:
                continue
            if self._still_exists(display):
                merged[display] = entry
        merged.update(self._touched)
        payload = {
            "version": CACHE_VERSION,
            "catalog": self.catalog_hash,
            "files": merged,
        }
        tmp = self.path.with_name(
            f".{self.path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, sort_keys=True) + "\n",
                           encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            self.degraded = True
            try:
                tmp.unlink()
            except OSError:
                self.degraded = True  # temp cleanup is best-effort too
        return not self.degraded

    @staticmethod
    def _still_exists(display):
        """True when a cached display path still resolves to a file."""
        candidate = Path(display)
        if candidate.is_absolute():
            return candidate.is_file()
        from .walk import REPO_ROOT

        return ((REPO_ROOT / candidate).is_file()
                or (Path.cwd() / candidate).is_file())

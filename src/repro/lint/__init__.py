"""Static-analysis engine enforcing the library's invariants.

The tutorial's value is that ~20 alternative-clustering algorithms are
comparable under one roof; that only holds if every estimator obeys the
same invariants — seeded RNG threading, pure-NumPy substrates, the
``get_params``/fitted-attribute contract, logging-only output. This
package checks those invariants *statically*: one shared AST parse per
file, a registry of :class:`Rule` subclasses (``RL001``–``RL008``),
inline ``# repro: noqa[RL0xx]`` pragmas and a committed baseline for
grandfathered findings.

Run it as ``python -m repro.lint`` (or ``python -m repro lint``); the
rule catalog, suppression policy and JSON output schema are documented
in ``docs/static-analysis.md``. The allow/deny lists shared with the
``tools/`` scripts live in :mod:`repro.lint.walk`.
"""

from __future__ import annotations

from .engine import (
    BASELINE_VERSION,
    FileLint,
    Finding,
    LintEngine,
    LintReport,
    PARSE_RULE_ID,
    Rule,
    all_rule_classes,
    format_human,
    format_json,
    load_baseline,
    register,
    resolve_rules,
    write_baseline,
)
from . import rules  # noqa: F401 - importing populates the registry
from .walk import (
    API_DOC_PACKAGES,
    ESTIMATOR_PACKAGES,
    PACKAGE_ROOT,
    PRINT_ALLOWED,
    walk_source_tree,
)

__all__ = [
    "API_DOC_PACKAGES",
    "BASELINE_VERSION",
    "ESTIMATOR_PACKAGES",
    "FileLint",
    "Finding",
    "LintEngine",
    "LintReport",
    "PACKAGE_ROOT",
    "PARSE_RULE_ID",
    "PRINT_ALLOWED",
    "Rule",
    "all_rule_classes",
    "format_human",
    "format_json",
    "load_baseline",
    "register",
    "resolve_rules",
    "walk_source_tree",
    "write_baseline",
]

"""Static-analysis engine enforcing the library's invariants.

The tutorial's value is that ~20 alternative-clustering algorithms are
comparable under one roof; that only holds if every estimator obeys the
same invariants — seeded RNG threading, pure-NumPy substrates, the
``get_params``/fitted-attribute contract, logging-only output. This
package checks those invariants *statically*, in two passes: pass 1
parses each file once and runs the per-file rules
(``RL001``–``RL011``); pass 2 assembles per-file facts into a
whole-program index (module/import graph, docs corpus) and runs the
cross-module rules (``RL012``–``RL018``) — fork-safety, lock
discipline, resource lifecycle, metric-name consistency, the exception
taxonomy, dead exports, dead pragmas. Pass-1 results are memoised in
an incremental cache keyed by content sha and rule-catalog hash, so a
warm whole-tree lint skips parsing entirely. Suppression is explicit:
inline ``# repro: noqa[RL0xx]`` pragmas (dead ones are themselves
findings) and a committed baseline for grandfathered findings.

Run it as ``python -m repro.lint`` (or ``python -m repro lint``); the
rule catalog, suppression policy and JSON output schema are documented
in ``docs/static-analysis.md``. The allow/deny lists shared with the
``tools/`` scripts live in :mod:`repro.lint.walk`.
"""

from __future__ import annotations

from .cache import CACHE_VERSION, LintCache, rule_catalog_hash
from .engine import (
    BASELINE_VERSION,
    DEAD_PRAGMA_RULE_ID,
    FileLint,
    Finding,
    LintEngine,
    LintReport,
    PARSE_RULE_ID,
    Rule,
    all_rule_classes,
    format_github,
    format_human,
    format_json,
    load_baseline,
    register,
    resolve_rules,
    write_baseline,
)
from .index import ModuleRecord, ProgramIndex, module_name_for_path
from . import rules  # noqa: F401 - importing populates the registry
from .walk import (
    API_DOC_PACKAGES,
    ESTIMATOR_PACKAGES,
    PACKAGE_ROOT,
    PRINT_ALLOWED,
    walk_source_tree,
)

__all__ = [
    "API_DOC_PACKAGES",
    "BASELINE_VERSION",
    "CACHE_VERSION",
    "DEAD_PRAGMA_RULE_ID",
    "ESTIMATOR_PACKAGES",
    "FileLint",
    "Finding",
    "LintCache",
    "LintEngine",
    "LintReport",
    "ModuleRecord",
    "PACKAGE_ROOT",
    "PARSE_RULE_ID",
    "PRINT_ALLOWED",
    "ProgramIndex",
    "Rule",
    "all_rule_classes",
    "format_github",
    "format_human",
    "format_json",
    "load_baseline",
    "module_name_for_path",
    "register",
    "resolve_rules",
    "rule_catalog_hash",
    "walk_source_tree",
    "write_baseline",
]

"""Evaluating a *set* of clustering solutions against a *set* of truths.

The tutorial's problem statement (slide 27) asks for m solutions that
are each good and mutually dissimilar; when ground truths are planted
(as in all our experiments) the natural questions are:

* which planted truth does each solution capture, one-to-one?
* how many truths are recovered above a threshold?
* how much redundancy is left among the solutions?

:class:`MultipleClusteringReport` answers these with a Hungarian
matching on the solution-vs-truth ARI matrix; the experiment harness
and user code share it.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import (  # repro: noqa[RL002] - Hungarian matching has no NumPy substrate
    linear_sum_assignment,
)

from .partition import adjusted_rand_index
from ..exceptions import ValidationError

__all__ = ["solution_truth_matrix", "MultipleClusteringReport"]


def _as_label_list(labelings, name):
    out = [np.asarray(lab) for lab in labelings]
    if not out:
        raise ValidationError(f"{name} must contain at least one labeling")
    n = out[0].shape[0]
    if any(lab.shape != (n,) for lab in out):
        raise ValidationError(f"{name} entries must share one object set")
    return out


def _safe_score(score, a, b, default=0.0):
    """Score two labelings, tolerating disjoint non-noise coverage.

    Subspace-derived labelings may mark most objects as noise; when two
    labelings share no jointly clustered object the contingency-based
    scores are undefined and we report ``default`` (no agreement)."""
    try:
        return score(a, b)
    except ValidationError:
        return default


def solution_truth_matrix(solutions, truths, score=adjusted_rand_index):
    """Matrix ``M[i, j] = score(solutions[i], truths[j])``."""
    solutions = _as_label_list(solutions, "solutions")
    truths = _as_label_list(truths, "truths")
    if solutions[0].shape != truths[0].shape:
        raise ValidationError("solutions and truths must share objects")
    return np.array([
        [_safe_score(score, s, t) for t in truths] for s in solutions
    ])


class MultipleClusteringReport:
    """One-to-one evaluation of multiple solutions vs multiple truths.

    Parameters
    ----------
    solutions : sequence of label vectors
        The method's output (e.g. ``estimator.labelings_``).
    truths : sequence of label vectors
        The planted ground truths.
    score : callable — similarity in [-1, 1]; default ARI.

    Attributes
    ----------
    matrix_ : ndarray (n_solutions, n_truths)
    assignment_ : list of (solution_idx, truth_idx, score)
        Hungarian matching maximising the summed score.
    """

    def __init__(self, solutions, truths, score=adjusted_rand_index):
        self.solutions = [np.asarray(s) for s in solutions]
        self.truths = [np.asarray(t) for t in truths]
        self.matrix_ = solution_truth_matrix(solutions, truths, score=score)
        rows, cols = linear_sum_assignment(-self.matrix_)
        self.assignment_ = [
            (int(r), int(c), float(self.matrix_[r, c]))
            for r, c in zip(rows, cols)
        ]

    def recovered_truths(self, threshold=0.8):
        """Indices of truths matched one-to-one above ``threshold``."""
        return sorted(
            c for _, c, v in self.assignment_ if v >= threshold
        )

    def recovery_rate(self, threshold=0.8):
        """Fraction of truths recovered above ``threshold``."""
        return len(self.recovered_truths(threshold)) / len(self.truths)

    def redundancy(self):
        """Mean pairwise *similarity* among the solutions (1 - mean
        pairwise dissimilarity); 0 means perfectly diverse solutions.
        Pairs with no jointly clustered objects count as similarity 0."""
        if len(self.solutions) < 2:
            return 0.0
        m = len(self.solutions)
        sims = [
            _safe_score(adjusted_rand_index, self.solutions[i],
                        self.solutions[j])
            for i in range(m) for j in range(i + 1, m)
        ]
        return float(np.mean(sims))

    def best_score_per_truth(self):
        """Best (not necessarily one-to-one) score for each truth."""
        return self.matrix_.max(axis=0)

    def summary(self, threshold=0.8):
        """Dict with the headline numbers."""
        return {
            "n_solutions": len(self.solutions),
            "n_truths": len(self.truths),
            "recovery_rate": self.recovery_rate(threshold),
            "matched_scores": [v for _, _, v in self.assignment_],
            "redundancy": self.redundancy(),
        }

    def render(self, threshold=0.8):
        """Human-readable multi-line summary."""
        lines = [
            f"solutions: {len(self.solutions)}   truths: {len(self.truths)}",
        ]
        for r, c, v in self.assignment_:
            marker = "recovered" if v >= threshold else "missed"
            lines.append(
                f"  solution {r} <-> truth {c}: score {v:+.3f} ({marker})"
            )
        lines.append(f"recovery rate @ {threshold}: "
                     f"{self.recovery_rate(threshold):.2f}")
        lines.append(f"solution redundancy: {self.redundancy():+.3f}")
        return "\n".join(lines)

"""Hilbert-Schmidt Independence Criterion (Gretton et al. 2005).

The tutorial's slide 90 describes mSC (Niu & Dy 2010) steering its
subspace search towards statistically *independent* subspaces by
penalising HSIC between candidate views; this module provides the
estimator used there and in the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from ..utils.linalg import center_kernel, rbf_kernel
from ..utils.validation import check_array
from ..exceptions import ValidationError

__all__ = ["hsic", "normalized_hsic", "linear_hsic"]


def hsic(X, Y, *, kernel="rbf", gamma=None):
    """Biased empirical HSIC ``tr(K H L H) / (n-1)^2``.

    Parameters
    ----------
    X, Y : array-like with the same number of rows
        Two representations (views) of the same objects.
    kernel : {"rbf", "linear"}
        Kernel applied to both views.
    gamma : float or None
        RBF bandwidth; median heuristic when ``None``.
    """
    X = check_array(X, name="X")
    Y = check_array(Y, name="Y")
    n = X.shape[0]
    if Y.shape[0] != n:
        raise ValidationError("X and Y must describe the same objects")
    if n < 2:
        raise ValidationError("HSIC needs at least 2 samples")
    if kernel == "rbf":
        K = rbf_kernel(X, gamma=gamma)
        L = rbf_kernel(Y, gamma=gamma)
    elif kernel == "linear":
        K = X @ X.T
        L = Y @ Y.T
    else:
        raise ValidationError(f"unknown kernel {kernel!r}")
    Kc = center_kernel(K)
    Lc = center_kernel(L)
    return float(np.sum(Kc * Lc) / (n - 1) ** 2)


def linear_hsic(X, Y):
    """HSIC with linear kernels (equals squared cross-covariance norm)."""
    return hsic(X, Y, kernel="linear")


def normalized_hsic(X, Y, *, kernel="rbf", gamma=None):
    """HSIC normalised to ``[0, 1]`` by the geometric mean of self-HSICs."""
    h_xy = hsic(X, Y, kernel=kernel, gamma=gamma)
    h_xx = hsic(X, X, kernel=kernel, gamma=gamma)
    h_yy = hsic(Y, Y, kernel=kernel, gamma=gamma)
    denom = np.sqrt(h_xx * h_yy)
    if denom <= 0:
        return 0.0
    return float(np.clip(h_xy / denom, 0.0, 1.0))

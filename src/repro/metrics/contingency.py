"""Contingency tables and pair-confusion counts between two labelings.

These are the primitives behind every partition-agreement measure in
:mod:`repro.metrics.partition` and the information-theoretic measures in
:mod:`repro.metrics.information`.
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_labels
from ..exceptions import ValidationError

__all__ = ["contingency_matrix", "pair_confusion", "relabel_consecutive"]


def relabel_consecutive(labels):
    """Map arbitrary integer labels to ``0..k-1`` preserving noise ``-1``.

    Returns ``(new_labels, classes)`` where ``classes[i]`` is the original
    label of the class now numbered ``i``.
    """
    labels = check_labels(labels)
    noise = labels == -1
    classes, inv = np.unique(labels[~noise], return_inverse=True)
    out = np.full(labels.shape, -1, dtype=np.int64)
    out[~noise] = inv
    return out, classes


def contingency_matrix(labels_a, labels_b, *, include_noise=False):
    """Contingency table ``N[i, j] = |cluster_i(a) ∩ cluster_j(b)|``.

    Parameters
    ----------
    labels_a, labels_b : array-like of int
        Two labelings of the same objects. ``-1`` marks noise.
    include_noise : bool
        When true, noise is treated as an ordinary class (appended last);
        otherwise objects that are noise in *either* labeling are dropped.

    Returns
    -------
    numpy.ndarray of shape (k_a, k_b)
    """
    a = check_labels(labels_a)
    b = check_labels(labels_b, n_samples=a.shape[0])
    if include_noise:
        # Shift noise to a dedicated trailing class per side.
        a = np.where(a == -1, a.max() + 1 if a.max() >= 0 else 0, a)
        b = np.where(b == -1, b.max() + 1 if b.max() >= 0 else 0, b)
    else:
        keep = (a != -1) & (b != -1)
        a, b = a[keep], b[keep]
        if a.size == 0:
            raise ValidationError(
                "no objects remain after dropping noise; "
                "use include_noise=True for all-noise labelings"
            )
    _, a = np.unique(a, return_inverse=True)
    _, b = np.unique(b, return_inverse=True)
    ka = int(a.max()) + 1
    kb = int(b.max()) + 1
    mat = np.zeros((ka, kb), dtype=np.int64)
    np.add.at(mat, (a, b), 1)
    return mat


def pair_confusion(labels_a, labels_b):
    """Pair-counting confusion ``(n11, n10, n01, n00)``.

    * ``n11`` — pairs together in both labelings,
    * ``n10`` — together in ``a`` only,
    * ``n01`` — together in ``b`` only,
    * ``n00`` — separated in both.

    Noise objects are dropped (consistent with
    :func:`contingency_matrix`).
    """
    mat = contingency_matrix(labels_a, labels_b)
    n = mat.sum()
    sum_sq = float((mat.astype(np.float64) ** 2).sum())
    row_sq = float((mat.sum(axis=1).astype(np.float64) ** 2).sum())
    col_sq = float((mat.sum(axis=0).astype(np.float64) ** 2).sum())
    n11 = 0.5 * (sum_sq - n)
    n10 = 0.5 * (row_sq - sum_sq)
    n01 = 0.5 * (col_sq - sum_sq)
    total_pairs = 0.5 * n * (n - 1)
    n00 = total_pairs - n11 - n10 - n01
    return n11, n10, n01, n00

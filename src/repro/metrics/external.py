"""External evaluation measures against a labelled ground truth.

Purity, matching-based clustering accuracy and the clustering
F-measure are the external scores the surveyed papers report alongside
ARI/NMI (e.g. the subspace-clustering evaluation study, Müller et al.
2009b).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import (  # repro: noqa[RL002] - Hungarian matching has no NumPy substrate
    linear_sum_assignment,
)

from .contingency import contingency_matrix
from ..exceptions import ValidationError

__all__ = ["purity", "clustering_accuracy", "f_measure"]


def purity(labels_pred, labels_true):
    """Purity in ``(0, 1]``: each predicted cluster votes for its
    majority true class. Noise objects are dropped."""
    mat = contingency_matrix(labels_pred, labels_true)
    return float(mat.max(axis=1).sum() / mat.sum())


def clustering_accuracy(labels_pred, labels_true):
    """Best-matching accuracy: Hungarian one-to-one matching of
    predicted clusters to true classes, then fraction correct."""
    mat = contingency_matrix(labels_pred, labels_true)
    rows, cols = linear_sum_assignment(-mat)
    return float(mat[rows, cols].sum() / mat.sum())


def f_measure(labels_pred, labels_true):
    """Clustering F-measure: each true class matched to the predicted
    cluster maximising its F1, weighted by class size."""
    mat = contingency_matrix(labels_pred, labels_true).astype(np.float64)
    if mat.size == 0:
        raise ValidationError("empty contingency table")
    n = mat.sum()
    cluster_sizes = mat.sum(axis=1)
    class_sizes = mat.sum(axis=0)
    total = 0.0
    for j in range(mat.shape[1]):
        best = 0.0
        for i in range(mat.shape[0]):
            tp = mat[i, j]
            if tp == 0:
                continue
            prec = tp / cluster_sizes[i]
            rec = tp / class_sizes[j]
            best = max(best, 2 * prec * rec / (prec + rec))
        total += class_sizes[j] * best
    return float(total / n)

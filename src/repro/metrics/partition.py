"""Pair-counting agreement measures between two flat partitions.

These realise the tutorial's ``Diss : Clusterings × Clusterings → R``
(slide 27) in its most common instantiations — e.g. meta clustering
(Caruana et al. 2006) groups clusterings by the Rand index.
"""

from __future__ import annotations

import math

from .contingency import pair_confusion

__all__ = [
    "rand_index",
    "adjusted_rand_index",
    "jaccard_index",
    "fowlkes_mallows",
    "pair_precision_recall_f1",
]


def rand_index(labels_a, labels_b):
    """Rand index in ``[0, 1]``: fraction of object pairs treated alike."""
    n11, n10, n01, n00 = pair_confusion(labels_a, labels_b)
    total = n11 + n10 + n01 + n00
    if total == 0:
        return 1.0
    return (n11 + n00) / total


def adjusted_rand_index(labels_a, labels_b):
    """Hubert-Arabie adjusted Rand index (chance-corrected, max 1).

    Returns 1 for identical partitions, ~0 for independent ones, and can be
    negative for systematic disagreement.
    """
    n11, n10, n01, n00 = pair_confusion(labels_a, labels_b)
    total = n11 + n10 + n01 + n00
    if total == 0:
        return 1.0
    sum_a = n11 + n10
    sum_b = n11 + n01
    expected = sum_a * sum_b / total
    max_index = 0.5 * (sum_a + sum_b)
    if math.isclose(max_index, expected):
        return 1.0
    return (n11 - expected) / (max_index - expected)


def jaccard_index(labels_a, labels_b):
    """Jaccard coefficient over co-clustered pairs."""
    n11, n10, n01, _ = pair_confusion(labels_a, labels_b)
    denom = n11 + n10 + n01
    if denom == 0:
        return 1.0
    return n11 / denom


def fowlkes_mallows(labels_a, labels_b):
    """Fowlkes-Mallows score: geometric mean of pair precision and recall."""
    n11, n10, n01, _ = pair_confusion(labels_a, labels_b)
    pa = n11 + n10
    pb = n11 + n01
    if pa == 0 or pb == 0:
        return 1.0 if pa == pb else 0.0
    return n11 / math.sqrt(pa * pb)


def pair_precision_recall_f1(labels_pred, labels_true):
    """Pairwise precision/recall/F1 of a predicted partition vs a reference.

    Returns
    -------
    (precision, recall, f1) : tuple of float
    """
    n11, n10, n01, _ = pair_confusion(labels_pred, labels_true)
    precision = n11 / (n11 + n10) if (n11 + n10) > 0 else 1.0
    recall = n11 / (n11 + n01) if (n11 + n01) > 0 else 1.0
    if precision + recall == 0:
        return precision, recall, 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1

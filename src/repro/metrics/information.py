"""Information-theoretic measures on partitions.

Entropy / mutual information are the currency of several surveyed methods:
the information-bottleneck family (Chechik & Tishby 2002, Gondek & Hofmann
2003/04), CAMI's decorrelation penalty (Dang & Bailey 2010a), minCEntropy
(Vinh & Epps 2010) and ENCLUS's subspace entropy (Cheng et al. 1999).
All logarithms are natural unless noted.
"""

from __future__ import annotations

import numpy as np

from .contingency import contingency_matrix

__all__ = [
    "entropy_of_labels",
    "entropy_of_distribution",
    "mutual_information",
    "normalized_mutual_information",
    "conditional_entropy",
    "variation_of_information",
]


def entropy_of_distribution(p):
    """Shannon entropy of a probability vector (zeros are ignored)."""
    p = np.asarray(p, dtype=np.float64).ravel()
    p = p[p > 0]
    if p.size == 0:
        return 0.0
    p = p / p.sum()
    return float(-np.sum(p * np.log(p)))


def entropy_of_labels(labels):
    """Shannon entropy of the cluster-size distribution of a labeling.

    Noise objects (label ``-1``) are excluded.
    """
    labels = np.asarray(labels)
    labels = labels[labels != -1]
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    return entropy_of_distribution(counts)


def mutual_information(labels_a, labels_b):
    """Mutual information ``I(A; B)`` between two labelings (nats)."""
    mat = contingency_matrix(labels_a, labels_b).astype(np.float64)
    n = mat.sum()
    if n == 0:
        return 0.0
    pij = mat / n
    pi = pij.sum(axis=1, keepdims=True)
    pj = pij.sum(axis=0, keepdims=True)
    nz = pij > 0
    return float(np.sum(pij[nz] * np.log(pij[nz] / (pi @ pj)[nz])))


def normalized_mutual_information(labels_a, labels_b, *, average="arithmetic"):
    """NMI in ``[0, 1]``.

    Parameters
    ----------
    average : {"arithmetic", "geometric", "min", "max"}
        Normaliser applied to ``H(A)`` and ``H(B)``.
    """
    mi = mutual_information(labels_a, labels_b)
    ha = entropy_of_labels(labels_a)
    hb = entropy_of_labels(labels_b)
    if ha <= 0.0 and hb <= 0.0:
        return 1.0
    if average == "arithmetic":
        denom = 0.5 * (ha + hb)
    elif average == "geometric":
        denom = np.sqrt(ha * hb)
    elif average == "min":
        denom = min(ha, hb)
    elif average == "max":
        denom = max(ha, hb)
    else:
        raise ValueError(f"unknown average {average!r}")
    if denom <= 0.0:
        return 0.0
    return float(np.clip(mi / denom, 0.0, 1.0))


def conditional_entropy(labels_a, labels_b):
    """Conditional entropy ``H(A | B)`` in nats.

    This is the alternativeness criterion of minCEntropy (Vinh & Epps
    2010): a good alternative ``A`` w.r.t. given ``B`` has high ``H(A|B)``.
    """
    return max(0.0, entropy_of_labels(labels_a) - mutual_information(labels_a, labels_b))


def variation_of_information(labels_a, labels_b):
    """Meila's variation of information ``H(A|B) + H(B|A)`` (a metric)."""
    mi = mutual_information(labels_a, labels_b)
    ha = entropy_of_labels(labels_a)
    hb = entropy_of_labels(labels_b)
    return max(0.0, ha + hb - 2.0 * mi)

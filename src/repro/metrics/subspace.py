"""Quality measures for *subspace* clusterings.

Implements the evaluation machinery of the study the tutorial cites on
slide 76 (Müller et al. 2009b, "Evaluating Clustering in Subspace
Projections of High Dimensional Data"):

* **RNIA** — relative non-intersecting area: how well the found
  (object x dimension) micro-cells cover the hidden ones;
* **CE** — clustering error: RNIA after a one-to-one matching of found to
  hidden clusters, punishing a hidden cluster split into many redundant
  projections;
* coverage and redundancy statistics used in the redundancy experiments.

Clusters are accepted either as ``(objects, dims)`` pairs or any object
exposing ``.objects`` and ``.dims`` (e.g.
:class:`repro.core.subspace.SubspaceCluster`).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "as_object_dim_pairs",
    "micro_object_count",
    "rnia",
    "clustering_error",
    "subspace_coverage",
    "redundancy_ratio",
    "pair_f1_subspace",
]


def as_object_dim_pairs(clusters):
    """Normalise a collection of subspace clusters to (frozenset, frozenset)."""
    out = []
    for c in clusters:
        if hasattr(c, "objects") and hasattr(c, "dims"):
            objs, dims = c.objects, c.dims
        else:
            try:
                objs, dims = c
            except (TypeError, ValueError) as exc:
                raise ValidationError(
                    "subspace clusters must be (objects, dims) pairs or expose "
                    ".objects/.dims"
                ) from exc
        objs = frozenset(int(o) for o in objs)
        dims = frozenset(int(d) for d in dims)
        if not objs or not dims:
            raise ValidationError("subspace clusters must be non-empty")
        out.append((objs, dims))
    return out


def _micro_counts(clusters):
    """Count how often each (object, dim) micro-cell is claimed."""
    counts = {}
    for objs, dims in clusters:
        for o in objs:
            for d in dims:
                key = (o, d)
                counts[key] = counts.get(key, 0) + 1
    return counts


def micro_object_count(cluster):
    """Size |O| * |S| of one subspace cluster's micro-cell set."""
    objs, dims = as_object_dim_pairs([cluster])[0]
    return len(objs) * len(dims)


def rnia(found, hidden):
    """Relative non-intersecting area in ``[0, 1]`` (1 is perfect).

    ``RNIA = 1 - (U - I) / U`` where ``U``/``I`` are the union/intersection
    of the found and hidden micro-cell multisets.
    """
    found = as_object_dim_pairs(found)
    hidden = as_object_dim_pairs(hidden)
    cf = _micro_counts(found)
    ch = _micro_counts(hidden)
    union = 0
    inter = 0
    for key in set(cf) | set(ch):
        a = cf.get(key, 0)
        b = ch.get(key, 0)
        union += max(a, b)
        inter += min(a, b)
    if union == 0:
        return 1.0
    return inter / union


def clustering_error(found, hidden):
    """CE score in ``[0, 1]`` (1 is perfect).

    Each hidden cluster may be matched to at most one found cluster
    (greedy maximum-intersection matching); unmatched micro-cells count as
    error. Redundant projections of one hidden cluster therefore lower CE
    even when RNIA stays high — this is exactly the measurement used to
    show the redundancy problem of slide 76.
    """
    found = as_object_dim_pairs(found)
    hidden = as_object_dim_pairs(hidden)
    if not found and not hidden:
        return 1.0
    if not found or not hidden:
        return 0.0
    inter = np.zeros((len(found), len(hidden)))
    for i, (fo, fd) in enumerate(found):
        fcells = len(fo) * len(fd)
        for j, (ho, hd) in enumerate(hidden):
            shared = len(fo & ho) * len(fd & hd)
            inter[i, j] = min(shared, fcells)
    matched = 0.0
    work = inter.copy()
    for _ in range(min(work.shape)):
        i, j = np.unravel_index(np.argmax(work), work.shape)
        if work[i, j] <= 0:
            break
        matched += work[i, j]
        work[i, :] = -1
        work[:, j] = -1
    union = sum(len(o) * len(d) for o, d in found)
    union += sum(len(o) * len(d) for o, d in hidden) - matched
    # union here = |found cells| + |hidden cells| - matched, the D_union of CE.
    if union <= 0:
        return 1.0
    return float(matched / union)


def subspace_coverage(clusters, n_samples):
    """Fraction of objects contained in at least one cluster."""
    clusters = as_object_dim_pairs(clusters)
    covered = set()
    for objs, _ in clusters:
        covered |= objs
    return len(covered) / float(n_samples)


def redundancy_ratio(found, hidden):
    """How many found clusters exist per hidden cluster (>= 1 when found
    covers everything; large values signal the redundancy explosion)."""
    found = as_object_dim_pairs(found)
    hidden = as_object_dim_pairs(hidden)
    if not hidden:
        raise ValidationError("redundancy_ratio needs at least one hidden cluster")
    return len(found) / float(len(hidden))


def pair_f1_subspace(found, hidden):
    """Object-set F1: each hidden cluster matched to its best found cluster.

    Measures recovery of the hidden *groups* irrespective of subspace
    (used alongside RNIA/CE in the benchmark harness).
    """
    found = as_object_dim_pairs(found)
    hidden = as_object_dim_pairs(hidden)
    if not hidden:
        raise ValidationError("pair_f1_subspace needs hidden clusters")
    if not found:
        return 0.0
    f1s = []
    for ho, _ in hidden:
        best = 0.0
        for fo, _ in found:
            tp = len(ho & fo)
            if tp == 0:
                continue
            prec = tp / len(fo)
            rec = tp / len(ho)
            best = max(best, 2 * prec * rec / (prec + rec))
        f1s.append(best)
    return float(np.mean(f1s))

"""Internal (ground-truth-free) quality measures for a single clustering.

These instantiate the tutorial's abstract quality function
``Q : Clusterings → R`` (slide 27) — e.g. k-means' compactness/total
distance (slide 28).
"""

from __future__ import annotations

import numpy as np

from ..utils.linalg import cdist_sq, pairwise_distances
from ..utils.validation import check_array, check_labels
from ..exceptions import ValidationError

__all__ = [
    "sse",
    "compactness",
    "silhouette_score",
    "davies_bouldin",
    "dunn_index",
]


def _cluster_ids(labels):
    ids = np.unique(labels)
    return ids[ids != -1]


def sse(X, labels):
    """Sum of squared distances of each point to its cluster mean.

    Noise points are ignored. Lower is better.
    """
    X = check_array(X)
    labels = check_labels(labels, n_samples=X.shape[0])
    total = 0.0
    for cid in _cluster_ids(labels):
        pts = X[labels == cid]
        mu = pts.mean(axis=0)
        total += float(np.sum((pts - mu) ** 2))
    return total


def compactness(X, labels):
    """Negative SSE — a "higher is better" quality ``Q`` for benchmarking."""
    return -sse(X, labels)


def silhouette_score(X, labels):
    """Mean silhouette coefficient over non-noise points, in ``[-1, 1]``.

    Requires at least 2 clusters; singleton clusters contribute 0 for their
    member (standard convention).
    """
    X = check_array(X)
    labels = check_labels(labels, n_samples=X.shape[0])
    ids = _cluster_ids(labels)
    if ids.size < 2:
        raise ValidationError("silhouette requires at least 2 clusters")
    mask = labels != -1
    Xc = X[mask]
    lc = labels[mask]
    d = np.sqrt(cdist_sq(Xc, Xc))
    n = Xc.shape[0]
    sil = np.zeros(n)
    # Mean distance from each point to each cluster.
    means = np.zeros((n, ids.size))
    sizes = np.zeros(ids.size)
    for j, cid in enumerate(ids):
        members = lc == cid
        sizes[j] = members.sum()
        means[:, j] = d[:, members].sum(axis=1)
    for i in range(n):
        own = int(np.where(ids == lc[i])[0][0])
        if sizes[own] <= 1:
            sil[i] = 0.0
            continue
        a = means[i, own] / (sizes[own] - 1)
        b = np.inf
        for j in range(ids.size):
            if j == own:
                continue
            b = min(b, means[i, j] / sizes[j])
        denom = max(a, b)
        sil[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(np.mean(sil))


def davies_bouldin(X, labels):
    """Davies-Bouldin index (lower is better)."""
    X = check_array(X)
    labels = check_labels(labels, n_samples=X.shape[0])
    ids = _cluster_ids(labels)
    if ids.size < 2:
        raise ValidationError("davies_bouldin requires at least 2 clusters")
    centroids = np.stack([X[labels == cid].mean(axis=0) for cid in ids])
    scatters = np.array([
        float(np.mean(np.linalg.norm(X[labels == cid] - centroids[j], axis=1)))
        for j, cid in enumerate(ids)
    ])
    sep = np.sqrt(cdist_sq(centroids, centroids))
    k = ids.size
    worst = np.zeros(k)
    for i in range(k):
        ratios = [
            (scatters[i] + scatters[j]) / sep[i, j]
            for j in range(k)
            if j != i and sep[i, j] > 0
        ]
        worst[i] = max(ratios) if ratios else 0.0
    return float(np.mean(worst))


def dunn_index(X, labels):
    """Dunn index: min inter-cluster distance / max cluster diameter."""
    X = check_array(X)
    labels = check_labels(labels, n_samples=X.shape[0])
    ids = _cluster_ids(labels)
    if ids.size < 2:
        raise ValidationError("dunn_index requires at least 2 clusters")
    mask = labels != -1
    d = pairwise_distances(X[mask])
    lc = labels[mask]
    max_diam = 0.0
    min_sep = np.inf
    for i, ci in enumerate(ids):
        mi = lc == ci
        if mi.sum() > 1:
            max_diam = max(max_diam, float(d[np.ix_(mi, mi)].max()))
        for cj in ids[i + 1:]:
            mj = lc == cj
            min_sep = min(min_sep, float(d[np.ix_(mi, mj)].min()))
    if max_diam <= 0.0:
        return np.inf
    return float(min_sep / max_diam)

"""Dissimilarity measures *between clusterings* (not between objects).

Slide 13 of the tutorial stresses that multiple-clustering methods need a
notion of (dis-)similarity between whole clusterings. This module collects
the measures the surveyed methods use:

* ``1 - ARI`` and ``1 - Rand`` — meta clustering (Caruana et al. 2006);
* variation of information — an information-theoretic metric;
* ADCO density-profile dissimilarity (Bae, Bailey & Dong 2010) — compares
  attribute-wise histogram profiles of the clusters, so two clusterings
  that group the *same* regions of space count as similar even when label
  vectors differ.
"""

from __future__ import annotations

import numpy as np

from .information import variation_of_information
from .partition import adjusted_rand_index, rand_index
from ..utils.validation import check_array, check_labels
from ..exceptions import ValidationError

__all__ = [
    "ari_dissimilarity",
    "rand_dissimilarity",
    "vi_dissimilarity",
    "density_profile",
    "adco_similarity",
    "adco_dissimilarity",
    "mean_pairwise_dissimilarity",
]


def ari_dissimilarity(labels_a, labels_b):
    """``1 - ARI``, clipped to ``[0, 2]`` (ARI can be negative)."""
    return 1.0 - adjusted_rand_index(labels_a, labels_b)


def rand_dissimilarity(labels_a, labels_b):
    """``1 - Rand index`` in ``[0, 1]``."""
    return 1.0 - rand_index(labels_a, labels_b)


def vi_dissimilarity(labels_a, labels_b):
    """Variation of information (a true metric on partitions)."""
    return variation_of_information(labels_a, labels_b)


def density_profile(X, labels, *, n_bins=5, bin_edges=None):
    """Per-cluster attribute histograms — the ADCO "density profile".

    Each attribute's range is split into ``n_bins`` equal-width bins
    (shared across clusterings via ``bin_edges`` for comparability) and
    each cluster is described by its object counts per (attribute, bin).

    Returns
    -------
    profile : numpy.ndarray of shape (n_clusters, n_features * n_bins)
    bin_edges : numpy.ndarray of shape (n_features, n_bins + 1)
    """
    X = check_array(X)
    labels = check_labels(labels, n_samples=X.shape[0])
    n, d = X.shape
    if bin_edges is None:
        bin_edges = np.stack([
            np.linspace(X[:, j].min(), X[:, j].max() + 1e-12, n_bins + 1)
            for j in range(d)
        ])
    else:
        bin_edges = np.asarray(bin_edges, dtype=np.float64)
        if bin_edges.shape[0] != d:
            raise ValidationError("bin_edges must have one row per feature")
        n_bins = bin_edges.shape[1] - 1
    ids = np.unique(labels)
    ids = ids[ids != -1]
    profile = np.zeros((ids.size, d * n_bins))
    for ci, cid in enumerate(ids):
        pts = X[labels == cid]
        for j in range(d):
            counts, _ = np.histogram(pts[:, j], bins=bin_edges[j])
            profile[ci, j * n_bins:(j + 1) * n_bins] = counts
    return profile, bin_edges


def adco_similarity(X, labels_a, labels_b, *, n_bins=5):
    """ADCO similarity between two clusterings of the same data.

    Clusters of ``a`` are greedily matched to clusters of ``b`` by maximal
    density-profile dot product; the similarity is the normalised sum of
    matched dot products. 1 means the clusterings occupy the same dense
    regions; values near 0 mean disjoint density profiles.
    """
    prof_a, edges = density_profile(X, labels_a, n_bins=n_bins)
    prof_b, _ = density_profile(X, labels_b, n_bins=n_bins, bin_edges=edges)
    if prof_a.size == 0 or prof_b.size == 0:
        raise ValidationError("both clusterings must contain clusters")
    dots = prof_a @ prof_b.T
    sim = _greedy_match_sum(dots)
    # Normalise by the larger self-similarity so identical clusterings -> 1.
    self_a = _greedy_match_sum(prof_a @ prof_a.T)
    self_b = _greedy_match_sum(prof_b @ prof_b.T)
    denom = max(self_a, self_b)
    if denom == 0:
        return 0.0
    return float(min(1.0, sim / denom))


def _greedy_match_sum(score):
    """Greedy one-to-one matching maximising the summed score."""
    score = score.astype(np.float64).copy()
    total = 0.0
    rounds = min(score.shape)
    for _ in range(rounds):
        i, j = np.unravel_index(np.argmax(score), score.shape)
        if score[i, j] <= -np.inf:
            break
        total += score[i, j]
        score[i, :] = -np.inf
        score[:, j] = -np.inf
    return total


def adco_dissimilarity(X, labels_a, labels_b, *, n_bins=5):
    """``1 - ADCO similarity``."""
    return 1.0 - adco_similarity(X, labels_a, labels_b, n_bins=n_bins)


def mean_pairwise_dissimilarity(labelings, diss=ari_dissimilarity):
    """Mean pairwise dissimilarity of a set of clusterings.

    Realises the tutorial's goal "Diss(Clust_i, Clust_j) high for all
    i != j" (slide 27) as a single scalar for benchmarking.
    """
    labelings = list(labelings)
    m = len(labelings)
    if m < 2:
        return 0.0
    vals = [
        diss(labelings[i], labelings[j])
        for i in range(m)
        for j in range(i + 1, m)
    ]
    return float(np.mean(vals))

"""Quality and (dis-)similarity measures.

Three levels, mirroring slide 24 of the tutorial:

* between **objects** — distances live in :mod:`repro.utils.linalg`;
* within one **clustering** — :mod:`repro.metrics.internal` (quality ``Q``);
* between **clusterings** — :mod:`repro.metrics.partition`,
  :mod:`repro.metrics.information`, :mod:`repro.metrics.clusterings`
  (dissimilarity ``Diss``);
* between **subspaces/views** — :mod:`repro.metrics.subspace`,
  :mod:`repro.metrics.hsic`.
"""

from .clusterings import (
    adco_dissimilarity,
    adco_similarity,
    ari_dissimilarity,
    density_profile,
    mean_pairwise_dissimilarity,
    rand_dissimilarity,
    vi_dissimilarity,
)
from .contingency import contingency_matrix, pair_confusion, relabel_consecutive
from .external import clustering_accuracy, f_measure, purity
from .hsic import hsic, linear_hsic, normalized_hsic
from .information import (
    conditional_entropy,
    entropy_of_distribution,
    entropy_of_labels,
    mutual_information,
    normalized_mutual_information,
    variation_of_information,
)
from .internal import compactness, davies_bouldin, dunn_index, silhouette_score, sse
from .multiset import MultipleClusteringReport, solution_truth_matrix
from .partition import (
    adjusted_rand_index,
    fowlkes_mallows,
    jaccard_index,
    pair_precision_recall_f1,
    rand_index,
)
from .subspace import (
    clustering_error,
    micro_object_count,
    pair_f1_subspace,
    redundancy_ratio,
    rnia,
    subspace_coverage,
)

__all__ = [
    "adco_dissimilarity",
    "adco_similarity",
    "ari_dissimilarity",
    "density_profile",
    "mean_pairwise_dissimilarity",
    "rand_dissimilarity",
    "vi_dissimilarity",
    "contingency_matrix",
    "pair_confusion",
    "relabel_consecutive",
    "clustering_accuracy",
    "f_measure",
    "purity",
    "hsic",
    "linear_hsic",
    "normalized_hsic",
    "conditional_entropy",
    "entropy_of_distribution",
    "entropy_of_labels",
    "mutual_information",
    "normalized_mutual_information",
    "variation_of_information",
    "compactness",
    "MultipleClusteringReport",
    "solution_truth_matrix",
    "davies_bouldin",
    "dunn_index",
    "silhouette_score",
    "sse",
    "adjusted_rand_index",
    "fowlkes_mallows",
    "jaccard_index",
    "pair_precision_recall_f1",
    "rand_index",
    "clustering_error",
    "micro_object_count",
    "pair_f1_subspace",
    "redundancy_ratio",
    "rnia",
    "subspace_coverage",
]

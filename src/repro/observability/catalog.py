"""The canonical metric-name catalog: every name the library records.

One flat registry of every metric the library emits, so the name a
dashboard scrapes, the name a test asserts on, and the name the code
records are provably the same string. Lint rule ``RL015`` enforces the
contract statically: every literal ``record()`` / ``counter()`` /
``gauge()`` / ``histogram()`` name in the tree must appear in
:data:`METRICS` (or extend a :data:`METRIC_FAMILIES` prefix), every
catalog entry must actually be recorded somewhere, and the
``prometheus_name`` exposition mapping must stay collision-free over
the whole catalog.

Adding a metric is therefore a two-line change — the call site and the
catalog row — and renaming one is impossible to do halfway.

The dynamic families cover per-key fan-outs whose tails are only known
at runtime (per-estimator fit counters, per-status HTTP counters); the
leading constant fragment of the f-string must match a family key
exactly.
"""

from __future__ import annotations

__all__ = ["METRIC_FAMILIES", "METRICS"]

#: ``{metric name: (kind, what it measures)}`` — the single source of
#: truth for every literal metric name recorded in the tree.
METRICS = {
    # fitting telemetry (repro.observability.telemetry)
    "fits_total": ("counter", "completed estimator fits, all estimators"),
    "fit_iterations": ("histogram", "iteration events per completed fit"),
    # fault-contained pool (repro.robustness.pool)
    "pool.queue.depth": ("gauge", "tasks waiting for a worker"),
    "pool.task.seconds": ("histogram", "wall-clock seconds per pool task"),
    "pool.tasks.expired": ("counter", "tasks dropped after exhausting retries"),
    "pool.tasks.in_flight": ("gauge", "tasks currently assigned to workers"),
    "pool.tasks.steals": ("counter", "tasks reassigned from a dead worker"),
    "pool.tasks.timeouts": ("counter", "tasks killed at the hard deadline"),
    "pool.workers.alive": ("gauge", "live worker processes"),
    "pool.workers.respawned": ("counter", "workers replaced after death"),
    "pool.workers.spawned": ("counter", "workers started, lifetime total"),
    # crash-safe journal (repro.robustness.checkpoint)
    "robustness.journal.degraded": ("gauge", "1 while journal writes fail"),
    "robustness.journal.integrity_quarantined":
        ("counter", "journal records quarantined by checksum mismatch"),
    "robustness.journal.write_errors": ("counter", "failed journal appends"),
    # serving layer (repro.serve)
    "serve.breaker.opened": ("counter", "circuit-breaker open transitions"),
    "serve.breaker.rejected": ("counter", "requests refused by open breaker"),
    "serve.cache.degraded": ("gauge", "1 while the model cache is read-only"),
    "serve.cache.hits": ("counter", "fitted models served from the registry"),
    "serve.cache.integrity_quarantined":
        ("counter", "cached models quarantined by checksum mismatch"),
    "serve.cache.misses": ("counter", "fit requests not already cached"),
    "serve.cache.write_errors": ("counter", "failed model-cache writes"),
    "serve.fit.seconds": ("histogram", "wall-clock seconds per served fit"),
    "serve.http.errors": ("counter", "HTTP requests answered with an error"),
    "serve.http.seconds": ("histogram", "wall-clock seconds per HTTP request"),
    "serve.jobs.coalesced": ("counter", "submissions merged into an "
                                        "identical in-flight job"),
    "serve.jobs.deadline_expired": ("counter", "jobs dropped at their "
                                               "client deadline"),
    "serve.jobs.failed": ("counter", "jobs whose guarded fit failed"),
    "serve.jobs.fitted": ("counter", "jobs whose guarded fit succeeded"),
    "serve.jobs.shed": ("counter", "jobs rejected by load shedding"),
    "serve.jobs.submitted": ("counter", "jobs accepted into the queue"),
    "serve.queue.depth": ("gauge", "jobs waiting in the scheduler queue"),
    "serve.queue.rejected": ("counter", "jobs refused by the bounded queue"),
}

#: Dynamic name families: ``{constant f-string prefix: (kind, note)}``.
#: The runtime tail is unbounded (estimator names, HTTP statuses), so
#: the catalog pins the prefix instead of enumerating members.
METRIC_FAMILIES = {
    "fits_total.": ("counter", "per-estimator completed fits"),
    "serve.http.": ("counter", "per-status HTTP responses"),
}

"""Per-iteration convergence telemetry for iterative optimisers.

Every iterative optimiser in the library reports its objective once per
outer iteration through the :func:`repro.robustness.budget_tick` seam
(``budget_tick(objective=obj)``) or directly via :func:`emit_objective`.
When a :func:`capture_convergence` scope is active — each estimator
opens one around every restart of its optimisation loop — the values
become :class:`ConvergenceEvent` records ``(iteration, objective,
delta)``, and the winning restart's trace is stored on the fitted
estimator as ``convergence_trace_``::

    est = KMeans(n_clusters=3).fit(X)
    for ev in est.convergence_trace_:
        print(ev.iteration, ev.objective, ev.delta)

``delta`` is ``objective - previous_objective`` (``nan`` on the first
iteration), so a monotone optimiser shows a single sign throughout.
Estimators whose objective is legitimately non-monotone (co-EM may
oscillate, CAMI's repulsion step overshoots, ...) document that in their
class docstring; :func:`summarize_trace` classifies the shape either
way.

The capture scope is a ``ContextVar``, so a sub-estimator fitted inside
another optimiser (k-means inside spectral clustering, a clusterer
inside the transformation pipeline) records into its *own* scope without
polluting the caller's trace.
"""

from __future__ import annotations

import contextlib
import contextvars
import math
from typing import NamedTuple

from .registry import default_registry

__all__ = [
    "ConvergenceEvent",
    "ConvergenceCapture",
    "capture_convergence",
    "emit_objective",
    "record_convergence",
    "summarize_trace",
]

_ACTIVE_CAPTURE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_convergence_capture", default=None
)


class ConvergenceEvent(NamedTuple):
    """One outer-iteration observation of an optimiser's objective."""

    iteration: int
    objective: float
    delta: float

    def to_dict(self):
        return {"iteration": self.iteration, "objective": self.objective,
                "delta": self.delta}


class ConvergenceCapture:
    """Accumulates :class:`ConvergenceEvent` records for one optimiser run."""

    __slots__ = ("events",)

    def __init__(self):
        self.events = []

    def emit(self, objective):
        objective = float(objective)
        if self.events:
            delta = objective - self.events[-1].objective
        else:
            delta = math.nan
        self.events.append(
            ConvergenceEvent(len(self.events) + 1, objective, delta)
        )

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return f"ConvergenceCapture({len(self.events)} events)"


@contextlib.contextmanager
def capture_convergence():
    """Scope collecting objective emissions from the code inside it.

    Nested scopes shadow outer ones, isolating sub-estimator fits.
    Yields the :class:`ConvergenceCapture`; read ``.events`` after the
    block.
    """
    capture = ConvergenceCapture()
    token = _ACTIVE_CAPTURE.set(capture)
    try:
        yield capture
    finally:
        _ACTIVE_CAPTURE.reset(token)


def emit_objective(objective):
    """Report one outer-iteration objective value.

    No-op (one ``ContextVar`` read) when no capture scope is active.
    :func:`repro.robustness.budget_tick` forwards its ``objective``
    keyword here, so optimisers instrumented for budgets get telemetry
    from the same call site.
    """
    capture = _ACTIVE_CAPTURE.get()
    if capture is not None:
        capture.emit(objective)


def record_convergence(estimator, events):
    """Attach ``events`` to ``estimator.convergence_trace_`` and count it.

    Called once at the end of every instrumented ``fit`` with the
    winning restart's events. Also updates the default metrics registry:
    ``fits_total`` / ``fits_total.<Class>`` counters and the
    ``fit_iterations`` histogram.
    """
    events = list(events)
    estimator.convergence_trace_ = events
    name = type(estimator).__name__
    registry = default_registry()
    registry.counter("fits_total").inc()
    registry.counter(f"fits_total.{name}").inc()
    if events:
        registry.histogram("fit_iterations").observe(len(events))
    return events


def summarize_trace(events):
    """Shape summary of a convergence trace.

    Returns a dict with ``n_iterations``, ``first``/``final`` objective,
    ``total_change``, and ``shape`` — one of ``"nonincreasing"``,
    ``"nondecreasing"``, ``"mixed"``, ``"constant"``, or ``"empty"``.
    """
    events = list(events or ())
    if not events:
        return {"n_iterations": 0, "first": None, "final": None,
                "total_change": 0.0, "shape": "empty"}
    deltas = [ev.delta for ev in events[1:]]
    eps = 1e-12 * max(1.0, abs(events[0].objective))
    down = any(d < -eps for d in deltas)
    up = any(d > eps for d in deltas)
    if up and down:
        shape = "mixed"
    elif up:
        shape = "nondecreasing"
    elif down:
        shape = "nonincreasing"
    else:
        shape = "constant"
    return {
        "n_iterations": len(events),
        "first": events[0].objective,
        "final": events[-1].objective,
        "total_change": events[-1].objective - events[0].objective,
        "shape": shape,
    }

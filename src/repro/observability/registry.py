"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

The library keeps one default :class:`MetricsRegistry` per process
(prometheus-client style). Estimators and the harness update it through
the :func:`record` helper or by grabbing a named instrument::

    from repro.observability import record, default_registry

    record("fits_total")                       # counter += 1
    record("queue_depth", 17, kind="gauge")    # gauge = 17
    record("fit_seconds", 0.83, kind="histogram")

    print(default_registry().render())

Instruments are created on first use and a name is bound to one kind
for the life of the registry — re-using ``fits_total`` as a gauge is a
:class:`~repro.exceptions.ValidationError`, catching mix-ups early.

The registry is thread-safe: one re-entrant lock per registry guards
instrument creation and every update, so the serving layer can record
from ``ThreadingHTTPServer`` threads and the dispatcher concurrently
without losing increments. Cross-process aggregation goes through
:meth:`MetricsRegistry.snapshot` on the worker side and
:meth:`MetricsRegistry.merge` on the driver side (counters add, gauges
take the incoming value, histograms add bucket-wise); and
:meth:`MetricsRegistry.to_prometheus` renders everything in the
Prometheus text exposition format v0.0.4 for ``GET /metrics``.
"""

from __future__ import annotations

import json
import math
import re
import threading

from ..exceptions import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "prometheus_name",
    "default_registry",
    "reset_default_registry",
    "record",
]

# Geared to iteration counts and (milli)second timings alike.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                   1000.0)

#: Bounds for histograms observing *seconds* of latency (HTTP requests,
#: pool tasks): sub-millisecond cache hits through minute-long fits.
LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   60.0, 300.0)

#: ``Content-Type`` for :meth:`MetricsRegistry.to_prometheus` responses.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock=None):
        self.value = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def inc(self, n=1.0):
        n = float(n)
        if n < 0:
            raise ValidationError(f"counters only go up, got inc({n})")
        with self._lock:
            self.value += n

    def snapshot(self):
        with self._lock:
            return {"value": self.value}

    def _merge(self, data):
        """Fold a worker-side snapshot in: counters add."""
        self.inc(data["value"])

    def __repr__(self):
        return f"Counter(value={self.value:g})"


class Gauge:
    """Last-written value."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock=None):
        self.value = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def set(self, value):
        with self._lock:
            self.value = float(value)

    def inc(self, n=1.0):
        with self._lock:
            self.value += float(n)

    def snapshot(self):
        with self._lock:
            return {"value": self.value}

    def _merge(self, data):
        """Fold a worker-side snapshot in: last write wins."""
        self.set(data["value"])

    def __repr__(self):
        return f"Gauge(value={self.value:g})"


class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max.

    ``buckets`` are inclusive upper bounds; one implicit ``+inf`` bucket
    catches the tail. ``counts[i]`` is the number of observations with
    ``value <= buckets[i]`` (cumulative, prometheus-style, so bucket
    boundaries can be compared across instruments).
    """

    __slots__ = ("buckets", "counts", "count", "total", "min", "max",
                 "_lock")

    def __init__(self, buckets=DEFAULT_BUCKETS, lock=None):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(not math.isfinite(b) for b in bounds):
            raise ValidationError("histogram buckets must be finite and "
                                  "non-empty")
        if list(bounds) != sorted(set(bounds)):
            raise ValidationError("histogram buckets must be strictly "
                                  f"increasing, got {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._lock = lock if lock is not None else threading.RLock()

    def observe(self, value):
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
            self.counts[-1] += 1  # +inf bucket counts everything

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, q):
        """Estimated ``q``-quantile (``0 < q <= 1``) from the buckets.

        The estimate is the upper bound of the first cumulative bucket
        containing the target rank — conservative (rounds up to a
        bucket boundary), which is the right bias for the load shedder
        sizing ``Retry-After`` from p95 service time. Observations in
        the ``+inf`` tail report the largest observed value. ``None``
        with no observations.
        """
        q = float(q)
        if not 0.0 < q <= 1.0:
            raise ValidationError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            if not self.count:
                return None
            rank = q * self.count
            for bound, cumulative in zip(self.buckets, self.counts):
                if cumulative >= rank:
                    return bound
            return self.max

    def snapshot(self):
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "mean": self.mean,
                "min": self.min,
                "max": self.max,
                "bounds": list(self.buckets),
                "buckets": {
                    **{f"le_{b:g}": c
                       for b, c in zip(self.buckets, self.counts)},
                    "le_inf": self.counts[-1],
                },
            }

    def _merge(self, data):
        """Fold a worker-side snapshot in: bucket-wise addition.

        The incoming snapshot must have been taken on a histogram with
        the same bounds — summing counts across different bucket
        layouts would silently misattribute observations.
        """
        bounds = data.get("bounds")
        if bounds is not None and tuple(float(b) for b in bounds) \
                != self.buckets:
            raise ValidationError(
                f"cannot merge histogram snapshots with bounds "
                f"{tuple(bounds)} into buckets {self.buckets}")
        incoming = data.get("buckets") or {}
        try:
            counts = [incoming[f"le_{b:g}"] for b in self.buckets]
            counts.append(incoming["le_inf"])
        except KeyError as exc:
            raise ValidationError(
                f"histogram snapshot is missing bucket {exc} for bounds "
                f"{self.buckets}") from exc
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += int(c)
            self.count += int(data.get("count", 0))
            self.total += float(data.get("sum", 0.0))
            for name, pick in (("min", min), ("max", max)):
                incoming_value = data.get(name)
                if incoming_value is None:
                    continue
                mine = getattr(self, name)
                setattr(self, name, incoming_value if mine is None
                        else pick(mine, incoming_value))

    def __repr__(self):
        return (f"Histogram(count={self.count}, mean={self.mean:.3g}, "
                f"min={self.min}, max={self.max})")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def prometheus_name(name, kind="gauge"):
    """Map an internal metric name to its Prometheus exposition name.

    Dots (and anything else outside ``[a-zA-Z0-9_:]``) become
    underscores, the library namespace prefix ``repro_`` is applied,
    and counters get the conventional ``_total`` suffix:
    ``serve.jobs.submitted`` → ``repro_serve_jobs_submitted_total``.
    """
    base = re.sub(r"[^a-zA-Z0-9_:]", "_", str(name))
    if not base.startswith("repro_"):
        base = f"repro_{base}"
    if kind == "counter" and not base.endswith("_total"):
        base += "_total"
    return base


def _prom_value(value):
    """Prometheus sample value: integral floats render without ``.0``."""
    value = float(value)
    if math.isfinite(value) and value.is_integer():
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Named instruments, created on first use, one kind per name.

    All mutation — instrument creation and every update — happens under
    one re-entrant lock shared with the instruments, so concurrent
    threads never lose increments or race the create-on-first-use path.
    """

    def __init__(self):
        self._instruments = {}
        self._lock = threading.RLock()

    def _get(self, name, kind, **kwargs):
        if not isinstance(name, str) or not name:
            raise ValidationError(f"metric name must be a non-empty string, "
                                  f"got {name!r}")
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, _KINDS[kind]):
                    raise ValidationError(
                        f"metric {name!r} is a "
                        f"{type(existing).__name__.lower()}, not a {kind}"
                    )
                return existing
            instrument = _KINDS[kind](lock=self._lock, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name):
        return self._get(name, "counter")

    def gauge(self, name):
        return self._get(name, "gauge")

    def histogram(self, name, buckets=DEFAULT_BUCKETS):
        return self._get(name, "histogram", buckets=buckets)

    def record(self, name, value=1.0, kind="counter"):
        """One-line update: inc a counter / set a gauge / observe."""
        if kind == "counter":
            self.counter(name).inc(value)
        elif kind == "gauge":
            self.gauge(name).set(value)
        elif kind == "histogram":
            self.histogram(name).observe(value)
        else:
            raise ValidationError(
                f"unknown metric kind {kind!r}; choose from "
                f"{sorted(_KINDS)}"
            )

    def snapshot(self):
        """All instruments as a nested, JSON-serialisable dict."""
        with self._lock:
            return {
                name: {"kind": type(inst).__name__.lower(),
                       **inst.snapshot()}
                for name, inst in sorted(self._instruments.items())
            }

    def merge(self, snapshot):
        """Fold another registry's :meth:`snapshot` into this one.

        The cross-process aggregation primitive: pool workers ship
        their registry snapshot back with each outcome, and the driver
        merges the final per-worker snapshots here. Counters add,
        gauges take the incoming value, histograms add bucket-wise
        (bounds must match). Instruments missing here are created; a
        name bound to a different kind, or an unknown kind, raises.
        """
        if not isinstance(snapshot, dict):
            raise ValidationError(
                f"merge() expects a snapshot dict, got {snapshot!r}")
        with self._lock:
            for name, data in snapshot.items():
                if not isinstance(data, dict):
                    raise ValidationError(
                        f"snapshot entry {name!r} is not a dict")
                kind = data.get("kind")
                if kind not in _KINDS:
                    raise ValidationError(
                        f"snapshot entry {name!r} has unknown kind "
                        f"{kind!r}; choose from {sorted(_KINDS)}")
                kwargs = {}
                if kind == "histogram" and data.get("bounds") is not None:
                    kwargs["buckets"] = data["bounds"]
                self._get(name, kind, **kwargs)._merge(data)

    def to_prometheus(self):
        """Everything in Prometheus text exposition format v0.0.4.

        One ``# TYPE`` block per instrument; names mapped through
        :func:`prometheus_name`; histograms expose their cumulative
        buckets as ``_bucket{le="..."}`` samples (``le="+Inf"`` last)
        plus ``_sum`` and ``_count``. Serve it with
        :data:`PROMETHEUS_CONTENT_TYPE`.
        """
        with self._lock:
            items = [(name, type(inst).__name__.lower(), inst.snapshot())
                     for name, inst in sorted(self._instruments.items())]
        lines = []
        for name, kind, snap in items:
            pname = prometheus_name(name, kind)
            lines.append(f"# HELP {pname} repro metric {name}")
            lines.append(f"# TYPE {pname} {kind}")
            if kind == "histogram":
                counts = [snap["buckets"][f"le_{b:g}"]
                          for b in snap["bounds"]]
                for bound, count in zip(snap["bounds"], counts):
                    lines.append(
                        f'{pname}_bucket{{le="{bound:g}"}} '
                        f'{_prom_value(count)}')
                lines.append(f'{pname}_bucket{{le="+Inf"}} '
                             f'{_prom_value(snap["buckets"]["le_inf"])}')
                lines.append(f"{pname}_sum {_prom_value(snap['sum'])}")
                lines.append(f"{pname}_count {_prom_value(snap['count'])}")
            else:
                lines.append(f"{pname} {_prom_value(snap['value'])}")
        return "\n".join(lines) + "\n"

    def to_json(self, **kwargs):
        return json.dumps(self.snapshot(), **kwargs)

    def render(self):
        """Human-readable one-line-per-instrument dump."""
        with self._lock:
            items = sorted(self._instruments.items())
            lines = []
            for name, inst in items:
                if isinstance(inst, Histogram):
                    lines.append(
                        f"{name}: histogram count={inst.count} "
                        f"mean={inst.mean:.4g} min={inst.min} "
                        f"max={inst.max}"
                    )
                else:
                    kind = type(inst).__name__.lower()
                    lines.append(f"{name}: {kind} {inst.value:g}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self):
        with self._lock:
            self._instruments.clear()

    def __len__(self):
        with self._lock:
            return len(self._instruments)

    def __contains__(self, name):
        with self._lock:
            return name in self._instruments

    def __repr__(self):
        return f"MetricsRegistry({len(self._instruments)} instruments)"


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry():
    """The process-local registry estimators record into."""
    return _DEFAULT_REGISTRY


def reset_default_registry():
    """Clear the default registry (tests / between sweeps / freshly
    forked pool workers, whose inherited parent counters would
    double-count when their snapshot merges back)."""
    _DEFAULT_REGISTRY.reset()


def record(name, value=1.0, kind="counter"):
    """Update the default registry (see :meth:`MetricsRegistry.record`)."""
    _DEFAULT_REGISTRY.record(name, value, kind=kind)

"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

The library keeps one default :class:`MetricsRegistry` per process
(prometheus-client style). Estimators and the harness update it through
the :func:`record` helper or by grabbing a named instrument::

    from repro.observability import record, default_registry

    record("fits_total")                       # counter += 1
    record("queue_depth", 17, kind="gauge")    # gauge = 17
    record("fit_seconds", 0.83, kind="histogram")

    print(default_registry().render())

Instruments are created on first use and a name is bound to one kind
for the life of the registry — re-using ``fits_total`` as a gauge is a
:class:`~repro.exceptions.ValidationError`, catching mix-ups early.
Updates are O(1) dict operations; the registry is safe to leave enabled
in production paths.
"""

from __future__ import annotations

import json
import math

from ..exceptions import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_registry",
    "reset_default_registry",
    "record",
]

# Geared to iteration counts and (milli)second timings alike.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                   1000.0)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, n=1.0):
        n = float(n)
        if n < 0:
            raise ValidationError(f"counters only go up, got inc({n})")
        self.value += n

    def snapshot(self):
        return {"value": self.value}

    def __repr__(self):
        return f"Counter(value={self.value:g})"


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = float(value)

    def inc(self, n=1.0):
        self.value += float(n)

    def snapshot(self):
        return {"value": self.value}

    def __repr__(self):
        return f"Gauge(value={self.value:g})"


class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max.

    ``buckets`` are inclusive upper bounds; one implicit ``+inf`` bucket
    catches the tail. ``counts[i]`` is the number of observations with
    ``value <= buckets[i]`` (cumulative, prometheus-style, so bucket
    boundaries can be compared across instruments).
    """

    __slots__ = ("buckets", "counts", "count", "total", "min", "max")

    def __init__(self, buckets=DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(not math.isfinite(b) for b in bounds):
            raise ValidationError("histogram buckets must be finite and "
                                  "non-empty")
        if list(bounds) != sorted(set(bounds)):
            raise ValidationError("histogram buckets must be strictly "
                                  f"increasing, got {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
        self.counts[-1] += 1  # +inf bucket counts everything

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {
                **{f"le_{b:g}": c
                   for b, c in zip(self.buckets, self.counts)},
                "le_inf": self.counts[-1],
            },
        }

    def __repr__(self):
        return (f"Histogram(count={self.count}, mean={self.mean:.3g}, "
                f"min={self.min}, max={self.max})")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named instruments, created on first use, one kind per name."""

    def __init__(self):
        self._instruments = {}

    def _get(self, name, kind, **kwargs):
        if not isinstance(name, str) or not name:
            raise ValidationError(f"metric name must be a non-empty string, "
                                  f"got {name!r}")
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, _KINDS[kind]):
                raise ValidationError(
                    f"metric {name!r} is a "
                    f"{type(existing).__name__.lower()}, not a {kind}"
                )
            return existing
        instrument = _KINDS[kind](**kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name):
        return self._get(name, "counter")

    def gauge(self, name):
        return self._get(name, "gauge")

    def histogram(self, name, buckets=DEFAULT_BUCKETS):
        return self._get(name, "histogram", buckets=buckets)

    def record(self, name, value=1.0, kind="counter"):
        """One-line update: inc a counter / set a gauge / observe."""
        if kind == "counter":
            self.counter(name).inc(value)
        elif kind == "gauge":
            self.gauge(name).set(value)
        elif kind == "histogram":
            self.histogram(name).observe(value)
        else:
            raise ValidationError(
                f"unknown metric kind {kind!r}; choose from "
                f"{sorted(_KINDS)}"
            )

    def snapshot(self):
        """All instruments as a nested, JSON-serialisable dict."""
        return {
            name: {"kind": type(inst).__name__.lower(), **inst.snapshot()}
            for name, inst in sorted(self._instruments.items())
        }

    def to_json(self, **kwargs):
        return json.dumps(self.snapshot(), **kwargs)

    def render(self):
        """Human-readable one-line-per-instrument dump."""
        lines = []
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Histogram):
                lines.append(
                    f"{name}: histogram count={inst.count} "
                    f"mean={inst.mean:.4g} min={inst.min} max={inst.max}"
                )
            else:
                kind = type(inst).__name__.lower()
                lines.append(f"{name}: {kind} {inst.value:g}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self):
        self._instruments.clear()

    def __len__(self):
        return len(self._instruments)

    def __contains__(self, name):
        return name in self._instruments

    def __repr__(self):
        return f"MetricsRegistry({len(self._instruments)} instruments)"


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry():
    """The process-local registry estimators record into."""
    return _DEFAULT_REGISTRY


def reset_default_registry():
    """Clear the default registry (tests / between sweeps)."""
    _DEFAULT_REGISTRY.reset()


def record(name, value=1.0, kind="counter"):
    """Update the default registry (see :meth:`MetricsRegistry.record`)."""
    _DEFAULT_REGISTRY.record(name, value, kind=kind)

"""Named-logger conventions for the library.

Every subsystem logs under ``repro.<subsystem>`` (``repro.cluster``,
``repro.subspace``, ``repro.experiments``, ``repro.robustness``, ...),
so applications can dial one subsystem up without drowning in another.
The library itself never calls ``print`` outside the CLI and the report
generator — ``tools/check_no_print.py`` enforces this in tier-1.

Library modules::

    from repro.observability.logs import get_logger
    logger = get_logger(__name__)          # -> "repro.cluster.kmeans"

Applications / the CLI::

    from repro.observability import configure_logging
    configure_logging("DEBUG")             # or logging.DEBUG, or "-vv"

Following library convention, nothing is printed unless the application
configures a handler; ``configure_logging`` installs one idempotently on
the ``repro`` root logger.
"""

from __future__ import annotations

import logging

from ..exceptions import ValidationError

__all__ = ["get_logger", "configure_logging", "level_from_verbosity"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_HANDLER_FLAG = "_repro_observability_handler"


def get_logger(name="repro"):
    """Logger namespaced under ``repro`` (idempotent for repro.* names)."""
    if not name:
        name = "repro"
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


def level_from_verbosity(verbosity):
    """Map a ``-v`` count to a level: 0 -> WARNING, 1 -> INFO, 2+ -> DEBUG."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(level=logging.WARNING, stream=None):
    """Attach (or re-use) a stream handler on the ``repro`` root logger.

    ``level`` may be a ``logging`` constant or a name like ``"debug"``.
    Calling again reconfigures the existing handler instead of stacking
    duplicates. Returns the ``repro`` logger.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValidationError(
                f"unknown log level {level!r}; use DEBUG, INFO, WARNING, "
                "ERROR, or CRITICAL"
            )
        level = resolved
    root = logging.getLogger("repro")
    root.setLevel(level)
    handler = next(
        (h for h in root.handlers if getattr(h, _HANDLER_FLAG, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter(_FORMAT))
        setattr(handler, _HANDLER_FLAG, True)
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    return root

"""Nested tracing spans with wall-clock and optional peak-memory capture.

A :class:`Tracer` records a tree of :class:`Span` objects — typically
``experiment -> estimator.fit -> substep`` — with per-span wall-clock
duration, cooperative iteration counts (fed by
:func:`repro.robustness.budget_tick`), and, when ``profile_memory`` is
on, the ``tracemalloc`` peak attributable to each span. The result can
be exported as JSONL (one record per span, machine-readable) and
rendered as a text tree or a slowest-stage table.

Every span carries distributed-tracing identity: a ``trace_id`` shared
by everything causally downstream of one root operation, its own
``span_id``, and a ``parent_id``. A :class:`TraceContext` captures
``(trace_id, span_id)`` at any point and can cross a process boundary
as a plain dict; a tracer constructed from it parents its root spans
under the remote span, so :func:`merge_records` /
:meth:`Tracer.merge_shards` can reassemble driver and worker span
records into one causal tree afterwards.

Fast path: when no tracer is active, :func:`trace_span` and
:func:`add_ticks` cost a single ``ContextVar.get`` — estimators are
instrumented unconditionally and the whole layer stays disabled by
default.

Usage::

    tracer = Tracer()
    with tracer:                        # activates for this context
        with tracer.span("experiment", key="F1"):
            estimator.fit(X)            # fit spans nest automatically
    print(tracer.render_tree())
    tracer.write_jsonl("trace.jsonl")

Loading back::

    records = read_jsonl("trace.jsonl")
    print(render_records(records))
    print(render_stage_table(slowest_stages(records)))
"""

from __future__ import annotations

import contextlib
import contextvars
import functools
import json
import os
import time
import tracemalloc
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..exceptions import ValidationError
from .logs import get_logger

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "current_tracer",
    "current_trace_context",
    "trace_span",
    "traced_fit",
    "new_trace_id",
    "read_jsonl",
    "write_records_jsonl",
    "merge_records",
    "trace_shard_path",
    "trace_shard_paths",
    "render_records",
    "slowest_stages",
    "render_stage_table",
]

logger = get_logger("repro.observability.tracer")

_ACTIVE_TRACER: contextvars.ContextVar = contextvars.ContextVar(
    "repro_active_tracer", default=None
)


def current_tracer():
    """The tracer activated in this context, or ``None``."""
    return _ACTIVE_TRACER.get()


def new_trace_id():
    """A fresh 128-bit trace id (32 hex chars)."""
    return os.urandom(16).hex()


def _new_span_id():
    """A fresh 64-bit span id (16 hex chars)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """A point in a trace that work elsewhere can attach under.

    ``trace_id`` names the whole causal tree; ``span_id`` the span that
    becomes the remote work's parent (``None`` parents at the root).
    The dict form is what actually crosses pipes and worker ``config``
    dicts — both are accepted wherever a context is expected.
    """

    trace_id: str
    span_id: Optional[str] = None

    def to_dict(self):
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data):
        """Build from a dict / TraceContext / ``None`` (passed through)."""
        if data is None or isinstance(data, cls):
            return data
        if not isinstance(data, dict) or "trace_id" not in data:
            raise ValidationError(
                "TraceContext dict needs a 'trace_id' key, got "
                f"{data!r}")
        return cls(trace_id=str(data["trace_id"]),
                   span_id=data.get("span_id"))


def current_trace_context():
    """The active tracer's innermost :class:`TraceContext`, or ``None``."""
    tracer = _ACTIVE_TRACER.get()
    return None if tracer is None else tracer.context()


class Span:
    """One timed node of the trace tree."""

    __slots__ = ("name", "attrs", "start", "end", "children", "n_ticks",
                 "peak_bytes", "span_id", "parent_id", "_running_peak")

    def __init__(self, name, start, attrs=None, parent_id=None):
        self.name = str(name)
        self.attrs = dict(attrs or {})
        self.start = start
        self.end = None
        self.children = []
        self.n_ticks = 0
        self.peak_bytes = None
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self._running_peak = 0

    @property
    def duration(self):
        """Seconds spent inside the span (``None`` while still open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def total_ticks(self):
        """Cooperative iteration ticks in this span and all descendants."""
        return self.n_ticks + sum(c.total_ticks() for c in self.children)

    def __repr__(self):
        dur = "open" if self.end is None else f"{self.duration:.3f}s"
        return (f"Span({self.name!r}, {dur}, ticks={self.n_ticks}, "
                f"children={len(self.children)})")


class Tracer:
    """Collects a forest of :class:`Span` trees for one run.

    Parameters
    ----------
    profile_memory : bool
        Capture per-span ``tracemalloc`` peaks. Starts ``tracemalloc``
        when entering the tracer context (and stops it again if this
        tracer started it). Roughly 2-4x slower fits — off by default.
    trace_id : str or None
        Join an existing trace (a :class:`TraceContext` carried across
        a process boundary); a fresh id is minted when ``None``.
    parent_id : str or None
        Remote parent span: root spans of this tracer record it as
        their ``parent_id``, so a cross-process merge nests them under
        the originating span.
    tags : dict or None
        Flat JSON-safe attribution stamped onto every exported record
        (e.g. ``{"worker": 3, "pid": 12345}``).

    Use as a context manager to activate: inside the ``with`` block,
    instrumented code (``traced_fit`` estimators, ``budget_tick``)
    reports into this tracer; outside, it costs nothing.
    """

    def __init__(self, profile_memory=False, *, trace_id=None,
                 parent_id=None, tags=None):
        self.profile_memory = bool(profile_memory)
        self.trace_id = str(trace_id) if trace_id else new_trace_id()
        self.parent_id = parent_id
        self.tags = dict(tags or {})
        self.spans = []
        self._stack = []
        self._foreign = []
        self._epoch = time.perf_counter()
        self._token = None
        self._started_tracemalloc = False

    # -- activation ------------------------------------------------------

    def __enter__(self):
        if self._token is not None:
            raise ValidationError("Tracer is already active")
        if self.profile_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._token = _ACTIVE_TRACER.set(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        _ACTIVE_TRACER.reset(self._token)
        self._token = None
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False
        return False

    # -- span recording --------------------------------------------------

    @contextlib.contextmanager
    def span(self, name, **attrs):
        """Open a nested span; attributes must be JSON-serialisable."""
        profiling = self.profile_memory and tracemalloc.is_tracing()
        if profiling:
            peak_now = tracemalloc.get_traced_memory()[1]
            if self._stack:
                parent = self._stack[-1]
                parent._running_peak = max(parent._running_peak, peak_now)
            tracemalloc.reset_peak()
        parent_id = (self._stack[-1].span_id if self._stack
                     else self.parent_id)
        span = Span(name, time.perf_counter() - self._epoch, attrs,
                    parent_id=parent_id)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = time.perf_counter() - self._epoch
            if profiling:
                peak = max(tracemalloc.get_traced_memory()[1],
                           span._running_peak)
                span.peak_bytes = int(peak)
                tracemalloc.reset_peak()
                if self._stack:
                    parent = self._stack[-1]
                    parent._running_peak = max(parent._running_peak, peak)

    def add_ticks(self, n=1):
        """Credit ``n`` optimiser iterations to the innermost open span."""
        if self._stack:
            self._stack[-1].n_ticks += n

    def context(self):
        """:class:`TraceContext` of the innermost open span.

        With no span open, the context points at this tracer's own
        remote parent — so work attached through it becomes a sibling
        of this tracer's roots, still inside the same trace.
        """
        span_id = self._stack[-1].span_id if self._stack else self.parent_id
        return TraceContext(trace_id=self.trace_id, span_id=span_id)

    # -- export ----------------------------------------------------------

    def to_records(self):
        """Flatten the span forest to dicts in depth-first order.

        Foreign records adopted via :meth:`add_foreign_records` are
        merged in by span identity (see :func:`merge_records`), so a
        driver tracer that folded worker spans exports one causal tree.
        """
        records = []

        def visit(span, depth, path):
            path = f"{path}/{span.name}" if path else span.name
            rec = {
                "name": span.name,
                "path": path,
                "depth": depth,
                "start": round(span.start, 6),
                "duration": (None if span.duration is None
                             else round(span.duration, 6)),
                "n_ticks": span.n_ticks,
                "trace_id": self.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
            }
            if span.peak_bytes is not None:
                rec["peak_kb"] = round(span.peak_bytes / 1024.0, 1)
            for tag, value in self.tags.items():
                rec.setdefault(str(tag), value)
            if span.attrs:
                rec["attrs"] = _json_safe(span.attrs)
            records.append(rec)
            for child in span.children:
                visit(child, depth + 1, path)

        for root in self.spans:
            visit(root, 0, "")
        if self._foreign:
            return merge_records([records, self._foreign])
        return records

    def add_foreign_records(self, records):
        """Adopt span records produced by another tracer (e.g. shipped
        back from a pool worker with its outcome). They are merged into
        this tracer's exports by ``span_id``, so re-adding the same
        records — a worker shard that was also streamed over the pipe —
        is idempotent."""
        self._foreign.extend(dict(rec) for rec in records)

    @staticmethod
    def merge_shards(paths):
        """Merge per-worker trace shards into one causal record list.

        ``paths`` may include missing files (a worker that never
        exported) and shards with a torn trailing line (a worker
        SIGKILLed mid-write) — both are tolerated, mirroring
        :func:`repro.robustness.load_journal_records`.
        """
        lists = []
        for path in paths:
            try:
                lists.append(read_jsonl(path, recover=True))
            except FileNotFoundError:
                continue
        return merge_records(lists)

    def write_jsonl(self, path):
        """Write one JSON record per span to ``path``; returns the count.

        Strict RFC JSON (via :func:`repro.io.dumps`) written atomically,
        so a reader never sees a half-written trace and a bare
        ``NaN``/``Infinity`` token can never appear in a span record.
        """
        records = self.to_records()
        write_records_jsonl(path, records)
        return len(records)

    def render_tree(self, collapse=4):
        """Text rendering of the span forest (see :func:`render_records`)."""
        return render_records(self.to_records(), collapse=collapse)

    def __repr__(self):
        return (f"Tracer(profile_memory={self.profile_memory}, "
                f"trace_id={self.trace_id!r}, spans={len(self.spans)}, "
                f"active={self._token is not None})")


def _json_safe(obj):
    """Coerce attrs to JSON-serialisable values (repr as last resort)."""
    if isinstance(obj, dict):
        return {str(k): _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


@contextlib.contextmanager
def trace_span(name, **attrs):
    """Span on the active tracer; no-op when tracing is disabled."""
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as span:
        yield span


def traced_fit(fit):
    """Wrap an estimator ``fit`` in a span named ``<Class>.fit``.

    Decorator for estimator classes: when a tracer is active the fit
    (and everything it calls — sub-estimators, substeps, iteration
    ticks) is recorded as a nested span; when not, the only cost is one
    ``ContextVar`` read.
    """
    @functools.wraps(fit)
    def wrapper(self, *args, **kwargs):
        tracer = _ACTIVE_TRACER.get()
        if tracer is None:
            return fit(self, *args, **kwargs)
        with tracer.span(f"{type(self).__name__}.fit"):
            return fit(self, *args, **kwargs)
    return wrapper


# -- loading and rendering -------------------------------------------------

def read_jsonl(path, *, recover=False):
    """Load span records written by :meth:`Tracer.write_jsonl`.

    With ``recover=True`` a final line that is not valid JSON — the
    torn trailing write of a killed process — is dropped with a warning
    instead of raising, the same policy as the checkpoint journal. A
    bad line with valid records *after* it always raises: that is
    corruption, not a torn write.
    """
    records = []
    bad = None  # (line_no, error) of a candidate torn trailing line
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if bad is not None:
                raise ValidationError(
                    f"{path}:{bad[0]}: not a JSONL trace record "
                    f"({bad[1]})")
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if not recover:
                    raise ValidationError(
                        f"{path}:{line_no}: not a JSONL trace record "
                        f"({exc})") from exc
                bad = (line_no, exc)
    if bad is not None:
        logger.warning("dropped torn trailing line %d of trace %s",
                       bad[0], path)
    return records


def write_records_jsonl(path, records):
    """Atomically write span records as strict-JSON lines.

    Same durability idiom as the checkpoint journal: temp file in the
    target directory, fsync, ``os.replace`` — a concurrent reader (or a
    crash mid-write) sees either the old complete file or the new one.
    """
    from ..io import dumps  # lazy: repro.io imports observability.telemetry

    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(dumps(rec, indent=None) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return len(records)


def trace_shard_path(trace_path, slot):
    """Per-worker trace shard path: ``trace.worker-<slot>.jsonl``."""
    trace_path = Path(trace_path)
    return trace_path.with_name(
        f"{trace_path.stem}.worker-{int(slot)}{trace_path.suffix}")


def trace_shard_paths(trace_path):
    """Existing per-worker shards next to ``trace_path``, sorted."""
    trace_path = Path(trace_path)
    pattern = f"{trace_path.stem}.worker-*{trace_path.suffix}"
    return sorted(trace_path.parent.glob(pattern))


def merge_records(record_lists):
    """Merge span-record lists into one causal, depth-first tree.

    The inputs are flat record lists from different processes (driver
    trace, worker shards, records shipped over the result pipe) that
    share a ``trace_id``. Records are deduplicated by ``span_id`` —
    the same span arriving via a shard *and* the pipe merges to one
    node — then linked by ``parent_id``, and ``depth``/``path`` are
    recomputed for the merged tree. Spans whose parent is missing (it
    lived in a SIGKILLed worker's torn-off tail, or in a process that
    never exported) surface as roots rather than disappearing;
    parent cycles — impossible from a real tracer, but merge input is
    just bytes on disk — are broken the same way. Legacy records
    without a ``span_id`` keep their original path/depth and are
    appended at the end.
    """
    by_id = {}
    order = []
    legacy = []
    for records in record_lists:
        for rec in records:
            span_id = rec.get("span_id")
            if span_id is None:
                legacy.append(dict(rec))
                continue
            if span_id not in by_id:
                by_id[span_id] = dict(rec)
                order.append(span_id)
    children = {}
    roots = []
    for span_id in order:
        parent_id = by_id[span_id].get("parent_id")
        if parent_id is not None and parent_id != span_id \
                and parent_id in by_id:
            children.setdefault(parent_id, []).append(span_id)
        else:
            roots.append(span_id)
    merged = []
    visited = set()

    def visit(span_id, depth, path):
        if span_id in visited:
            return
        visited.add(span_id)
        rec = dict(by_id[span_id])
        path = f"{path}/{rec['name']}" if path else str(rec["name"])
        rec["path"] = path
        rec["depth"] = depth
        merged.append(rec)
        kids = sorted(children.get(span_id, ()),
                      key=lambda s: by_id[s].get("start") or 0.0)
        for kid in kids:
            visit(kid, depth + 1, path)

    for span_id in roots:
        visit(span_id, 0, "")
    for span_id in order:  # cycle members unreachable from any root
        if span_id not in visited:
            visit(span_id, 0, "")
    merged.extend(legacy)
    return merged


def _fmt_seconds(seconds):
    if seconds is None:
        return "open"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000.0:.1f}ms"


def _tree_from_records(records):
    """Rebuild (node, children) nesting from depth-annotated records."""
    roots = []
    stack = []  # (depth, node) ; node = [record, children]
    for rec in records:
        node = [rec, []]
        depth = int(rec.get("depth", 0))
        while stack and stack[-1][0] >= depth:
            stack.pop()
        if stack:
            stack[-1][1][1].append(node)
        else:
            roots.append(node)
        stack.append((depth, node))
    return roots


def render_records(records, collapse=4):
    """Render span records as a box-drawing tree.

    Sibling spans sharing a name are aggregated into one ``xN`` line
    once the group exceeds ``collapse`` members, so sweeps with many
    repeated fits stay readable. Spans that carry a ``worker`` tag (a
    merged cross-process trace) show their worker slot inline.
    """
    lines = []

    def describe(rec, count=1, total=None, ticks=None, peak=None):
        total = rec.get("duration") if total is None else total
        ticks = rec.get("n_ticks", 0) if ticks is None else ticks
        peak = rec.get("peak_kb") if peak is None else peak
        parts = [_fmt_seconds(total)]
        if count > 1:
            parts.append(f"mean {_fmt_seconds(total / count)}")
        if ticks:
            parts.append(f"{ticks} ticks")
        if peak is not None:
            parts.append(f"peak {peak:.0f}KB")
        label = rec["name"] + (f" x{count}" if count > 1 else "")
        if count == 1 and rec.get("worker") is not None:
            label += f" @w{rec['worker']}"
        return f"{label} ({', '.join(parts)})"

    def walk(nodes, prefix):
        groups = []
        for node in nodes:
            if groups and groups[-1][0][0]["name"] == node[0]["name"]:
                groups[-1].append(node)
            else:
                groups.append([node])
        flat = []
        for group in groups:
            if len(group) > collapse:
                flat.append(group)
            else:
                flat.extend([node] for node in group)
        for i, group in enumerate(flat):
            last = i == len(flat) - 1
            branch = "`- " if last else "|- "
            child_prefix = prefix + ("   " if last else "|  ")
            if len(group) == 1:
                rec, children = group[0]
                lines.append(prefix + branch + describe(rec))
                walk(children, child_prefix)
            else:
                recs = [node[0] for node in group]
                total = sum(r.get("duration") or 0.0 for r in recs)
                ticks = sum(r.get("n_ticks", 0) for r in recs)
                peaks = [r["peak_kb"] for r in recs if "peak_kb" in r]
                lines.append(prefix + branch + describe(
                    recs[0], count=len(recs), total=total, ticks=ticks,
                    peak=max(peaks) if peaks else None,
                ))

    roots = _tree_from_records(records)
    for node in roots:
        rec, children = node
        lines.append(describe(rec))
        walk(children, "")
    return "\n".join(lines) if lines else "(empty trace)"


def slowest_stages(records, top=10):
    """Aggregate records by path; the per-stage timing breakdown.

    Returns dicts with ``path``, ``count``, ``total`` (inclusive
    seconds), ``self`` (exclusive of child spans), ``ticks``, and
    ``workers`` (distinct worker slots that executed the stage — 0 for
    a purely in-process trace) — sorted by ``self`` descending,
    truncated to ``top``.
    """
    by_path = {}
    child_time = {}
    for rec in records:
        path = rec["path"]
        entry = by_path.setdefault(
            path, {"path": path, "count": 0, "total": 0.0, "self": 0.0,
                   "ticks": 0, "_workers": set()}
        )
        dur = rec.get("duration") or 0.0
        entry["count"] += 1
        entry["total"] += dur
        entry["ticks"] += rec.get("n_ticks", 0)
        if rec.get("worker") is not None:
            entry["_workers"].add(rec["worker"])
        parent = path.rsplit("/", 1)[0] if "/" in path else None
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + dur
    for path, entry in by_path.items():
        entry["self"] = max(entry["total"] - child_time.get(path, 0.0), 0.0)
        entry["workers"] = len(entry.pop("_workers"))
    ranked = sorted(by_path.values(), key=lambda e: e["self"], reverse=True)
    return ranked[: int(top)]


def render_stage_table(stages):
    """Fixed-width text table for :func:`slowest_stages` output."""
    header = ("stage", "count", "total", "self", "ticks", "workers")
    rows = [
        (s["path"], str(s["count"]), _fmt_seconds(s["total"]),
         _fmt_seconds(s["self"]), str(s["ticks"]),
         str(s.get("workers", 0)))
        for s in stages
    ]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) if rows
              else len(header[i]) for i in range(len(header))]

    def line(vals):
        return " | ".join(v.ljust(w) for v, w in zip(vals, widths))

    out = [line(header), "-+-".join("-" * w for w in widths)]
    out.extend(line(r) for r in rows)
    return "\n".join(out)

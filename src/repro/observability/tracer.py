"""Nested tracing spans with wall-clock and optional peak-memory capture.

A :class:`Tracer` records a tree of :class:`Span` objects — typically
``experiment -> estimator.fit -> substep`` — with per-span wall-clock
duration, cooperative iteration counts (fed by
:func:`repro.robustness.budget_tick`), and, when ``profile_memory`` is
on, the ``tracemalloc`` peak attributable to each span. The result can
be exported as JSONL (one record per span, machine-readable) and
rendered as a text tree or a slowest-stage table.

Fast path: when no tracer is active, :func:`trace_span` and
:func:`add_ticks` cost a single ``ContextVar.get`` — estimators are
instrumented unconditionally and the whole layer stays disabled by
default.

Usage::

    tracer = Tracer()
    with tracer:                        # activates for this context
        with tracer.span("experiment", key="F1"):
            estimator.fit(X)            # fit spans nest automatically
    print(tracer.render_tree())
    tracer.write_jsonl("trace.jsonl")

Loading back::

    records = read_jsonl("trace.jsonl")
    print(render_records(records))
    print(render_stage_table(slowest_stages(records)))
"""

from __future__ import annotations

import contextlib
import contextvars
import functools
import json
import time
import tracemalloc

from ..exceptions import ValidationError

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "trace_span",
    "traced_fit",
    "read_jsonl",
    "render_records",
    "slowest_stages",
    "render_stage_table",
]

_ACTIVE_TRACER: contextvars.ContextVar = contextvars.ContextVar(
    "repro_active_tracer", default=None
)


def current_tracer():
    """The tracer activated in this context, or ``None``."""
    return _ACTIVE_TRACER.get()


class Span:
    """One timed node of the trace tree."""

    __slots__ = ("name", "attrs", "start", "end", "children", "n_ticks",
                 "peak_bytes", "_running_peak")

    def __init__(self, name, start, attrs=None):
        self.name = str(name)
        self.attrs = dict(attrs or {})
        self.start = start
        self.end = None
        self.children = []
        self.n_ticks = 0
        self.peak_bytes = None
        self._running_peak = 0

    @property
    def duration(self):
        """Seconds spent inside the span (``None`` while still open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def total_ticks(self):
        """Cooperative iteration ticks in this span and all descendants."""
        return self.n_ticks + sum(c.total_ticks() for c in self.children)

    def __repr__(self):
        dur = "open" if self.end is None else f"{self.duration:.3f}s"
        return (f"Span({self.name!r}, {dur}, ticks={self.n_ticks}, "
                f"children={len(self.children)})")


class Tracer:
    """Collects a forest of :class:`Span` trees for one run.

    Parameters
    ----------
    profile_memory : bool
        Capture per-span ``tracemalloc`` peaks. Starts ``tracemalloc``
        when entering the tracer context (and stops it again if this
        tracer started it). Roughly 2-4x slower fits — off by default.

    Use as a context manager to activate: inside the ``with`` block,
    instrumented code (``traced_fit`` estimators, ``budget_tick``)
    reports into this tracer; outside, it costs nothing.
    """

    def __init__(self, profile_memory=False):
        self.profile_memory = bool(profile_memory)
        self.spans = []
        self._stack = []
        self._epoch = time.perf_counter()
        self._token = None
        self._started_tracemalloc = False

    # -- activation ------------------------------------------------------

    def __enter__(self):
        if self._token is not None:
            raise ValidationError("Tracer is already active")
        if self.profile_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._token = _ACTIVE_TRACER.set(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        _ACTIVE_TRACER.reset(self._token)
        self._token = None
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False
        return False

    # -- span recording --------------------------------------------------

    @contextlib.contextmanager
    def span(self, name, **attrs):
        """Open a nested span; attributes must be JSON-serialisable."""
        profiling = self.profile_memory and tracemalloc.is_tracing()
        if profiling:
            peak_now = tracemalloc.get_traced_memory()[1]
            if self._stack:
                parent = self._stack[-1]
                parent._running_peak = max(parent._running_peak, peak_now)
            tracemalloc.reset_peak()
        span = Span(name, time.perf_counter() - self._epoch, attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = time.perf_counter() - self._epoch
            if profiling:
                peak = max(tracemalloc.get_traced_memory()[1],
                           span._running_peak)
                span.peak_bytes = int(peak)
                tracemalloc.reset_peak()
                if self._stack:
                    parent = self._stack[-1]
                    parent._running_peak = max(parent._running_peak, peak)

    def add_ticks(self, n=1):
        """Credit ``n`` optimiser iterations to the innermost open span."""
        if self._stack:
            self._stack[-1].n_ticks += n

    # -- export ----------------------------------------------------------

    def to_records(self):
        """Flatten the span forest to dicts in depth-first order."""
        records = []

        def visit(span, depth, path):
            path = f"{path}/{span.name}" if path else span.name
            rec = {
                "name": span.name,
                "path": path,
                "depth": depth,
                "start": round(span.start, 6),
                "duration": (None if span.duration is None
                             else round(span.duration, 6)),
                "n_ticks": span.n_ticks,
            }
            if span.peak_bytes is not None:
                rec["peak_kb"] = round(span.peak_bytes / 1024.0, 1)
            if span.attrs:
                rec["attrs"] = _json_safe(span.attrs)
            records.append(rec)
            for child in span.children:
                visit(child, depth + 1, path)

        for root in self.spans:
            visit(root, 0, "")
        return records

    def write_jsonl(self, path):
        """Write one JSON record per span to ``path``; returns the count."""
        records = self.to_records()
        with open(path, "w", encoding="utf-8") as fh:
            for rec in records:
                fh.write(json.dumps(rec) + "\n")
        return len(records)

    def render_tree(self, collapse=4):
        """Text rendering of the span forest (see :func:`render_records`)."""
        return render_records(self.to_records(), collapse=collapse)

    def __repr__(self):
        return (f"Tracer(profile_memory={self.profile_memory}, "
                f"spans={len(self.spans)}, active={self._token is not None})")


def _json_safe(obj):
    """Coerce attrs to JSON-serialisable values (repr as last resort)."""
    if isinstance(obj, dict):
        return {str(k): _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


@contextlib.contextmanager
def trace_span(name, **attrs):
    """Span on the active tracer; no-op when tracing is disabled."""
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as span:
        yield span


def traced_fit(fit):
    """Wrap an estimator ``fit`` in a span named ``<Class>.fit``.

    Decorator for estimator classes: when a tracer is active the fit
    (and everything it calls — sub-estimators, substeps, iteration
    ticks) is recorded as a nested span; when not, the only cost is one
    ``ContextVar`` read.
    """
    @functools.wraps(fit)
    def wrapper(self, *args, **kwargs):
        tracer = _ACTIVE_TRACER.get()
        if tracer is None:
            return fit(self, *args, **kwargs)
        with tracer.span(f"{type(self).__name__}.fit"):
            return fit(self, *args, **kwargs)
    return wrapper


# -- loading and rendering -------------------------------------------------

def read_jsonl(path):
    """Load span records written by :meth:`Tracer.write_jsonl`."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"{path}:{line_no}: not a JSONL trace record ({exc})"
                ) from exc
    return records


def _fmt_seconds(seconds):
    if seconds is None:
        return "open"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000.0:.1f}ms"


def _tree_from_records(records):
    """Rebuild (node, children) nesting from depth-annotated records."""
    roots = []
    stack = []  # (depth, node) ; node = [record, children]
    for rec in records:
        node = [rec, []]
        depth = int(rec.get("depth", 0))
        while stack and stack[-1][0] >= depth:
            stack.pop()
        if stack:
            stack[-1][1][1].append(node)
        else:
            roots.append(node)
        stack.append((depth, node))
    return roots


def render_records(records, collapse=4):
    """Render span records as a box-drawing tree.

    Sibling spans sharing a name are aggregated into one ``xN`` line
    once the group exceeds ``collapse`` members, so sweeps with many
    repeated fits stay readable.
    """
    lines = []

    def describe(rec, count=1, total=None, ticks=None, peak=None):
        total = rec.get("duration") if total is None else total
        ticks = rec.get("n_ticks", 0) if ticks is None else ticks
        peak = rec.get("peak_kb") if peak is None else peak
        parts = [_fmt_seconds(total)]
        if count > 1:
            parts.append(f"mean {_fmt_seconds(total / count)}")
        if ticks:
            parts.append(f"{ticks} ticks")
        if peak is not None:
            parts.append(f"peak {peak:.0f}KB")
        label = rec["name"] + (f" x{count}" if count > 1 else "")
        return f"{label} ({', '.join(parts)})"

    def walk(nodes, prefix):
        groups = []
        for node in nodes:
            if groups and groups[-1][0][0]["name"] == node[0]["name"]:
                groups[-1].append(node)
            else:
                groups.append([node])
        flat = []
        for group in groups:
            if len(group) > collapse:
                flat.append(group)
            else:
                flat.extend([node] for node in group)
        for i, group in enumerate(flat):
            last = i == len(flat) - 1
            branch = "`- " if last else "|- "
            child_prefix = prefix + ("   " if last else "|  ")
            if len(group) == 1:
                rec, children = group[0]
                lines.append(prefix + branch + describe(rec))
                walk(children, child_prefix)
            else:
                recs = [node[0] for node in group]
                total = sum(r.get("duration") or 0.0 for r in recs)
                ticks = sum(r.get("n_ticks", 0) for r in recs)
                peaks = [r["peak_kb"] for r in recs if "peak_kb" in r]
                lines.append(prefix + branch + describe(
                    recs[0], count=len(recs), total=total, ticks=ticks,
                    peak=max(peaks) if peaks else None,
                ))

    roots = _tree_from_records(records)
    for node in roots:
        rec, children = node
        lines.append(describe(rec))
        walk(children, "")
    return "\n".join(lines) if lines else "(empty trace)"


def slowest_stages(records, top=10):
    """Aggregate records by path; the per-stage timing breakdown.

    Returns dicts with ``path``, ``count``, ``total`` (inclusive
    seconds), ``self`` (exclusive of child spans), ``ticks`` — sorted by
    ``self`` descending, truncated to ``top``.
    """
    by_path = {}
    child_time = {}
    for rec in records:
        path = rec["path"]
        entry = by_path.setdefault(
            path, {"path": path, "count": 0, "total": 0.0, "self": 0.0,
                   "ticks": 0}
        )
        dur = rec.get("duration") or 0.0
        entry["count"] += 1
        entry["total"] += dur
        entry["ticks"] += rec.get("n_ticks", 0)
        parent = path.rsplit("/", 1)[0] if "/" in path else None
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + dur
    for path, entry in by_path.items():
        entry["self"] = max(entry["total"] - child_time.get(path, 0.0), 0.0)
    ranked = sorted(by_path.values(), key=lambda e: e["self"], reverse=True)
    return ranked[: int(top)]


def render_stage_table(stages):
    """Fixed-width text table for :func:`slowest_stages` output."""
    header = ("stage", "count", "total", "self", "ticks")
    rows = [
        (s["path"], str(s["count"]), _fmt_seconds(s["total"]),
         _fmt_seconds(s["self"]), str(s["ticks"]))
        for s in stages
    ]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) if rows
              else len(header[i]) for i in range(len(header))]

    def line(vals):
        return " | ".join(v.ljust(w) for v, w in zip(vals, widths))

    out = [line(header), "-+-".join("-" * w for w in widths)]
    out.extend(line(r) for r in rows)
    return "\n".join(out)

"""Instrumentation layer: tracing spans, metrics, convergence telemetry.

Zero-dependency observability for the whole library, disabled by
default and cooperatively fed by the same :func:`repro.robustness.budget_tick`
seam the fault-tolerance layer uses:

* :class:`Tracer` — nested wall-clock spans (``experiment ->
  estimator.fit -> substep``) with optional ``tracemalloc`` peak-memory
  capture, JSONL export, a rendered text tree, and slowest-stage tables;
* :class:`MetricsRegistry` — process-local counters, gauges, and
  fixed-bucket histograms, updated through :func:`record`;
* convergence telemetry — every iterative optimiser emits
  ``(iteration, objective, delta)`` events, stored as
  ``convergence_trace_`` on the fitted estimator and summarised by
  :func:`summarize_trace`;
* :func:`get_logger` / :func:`configure_logging` — named stdlib loggers
  per subsystem (``repro.cluster``, ``repro.experiments``, ...).

See ``docs/observability.md`` for the full guide, including the
measured overhead of the disabled fast path.
"""

from .logs import configure_logging, get_logger, level_from_verbosity
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    record,
    reset_default_registry,
)
from .telemetry import (
    ConvergenceCapture,
    ConvergenceEvent,
    capture_convergence,
    emit_objective,
    record_convergence,
    summarize_trace,
)
from .tracer import (
    Span,
    Tracer,
    current_tracer,
    read_jsonl,
    render_records,
    render_stage_table,
    slowest_stages,
    trace_span,
    traced_fit,
)

__all__ = [
    # tracer
    "Span",
    "Tracer",
    "current_tracer",
    "trace_span",
    "traced_fit",
    "read_jsonl",
    "render_records",
    "render_stage_table",
    "slowest_stages",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_registry",
    "reset_default_registry",
    "record",
    # telemetry
    "ConvergenceEvent",
    "ConvergenceCapture",
    "capture_convergence",
    "emit_objective",
    "record_convergence",
    "summarize_trace",
    # logging
    "get_logger",
    "configure_logging",
    "level_from_verbosity",
]

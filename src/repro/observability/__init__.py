"""Instrumentation layer: tracing spans, metrics, convergence telemetry.

Zero-dependency observability for the whole library, disabled by
default and cooperatively fed by the same :func:`repro.robustness.budget_tick`
seam the fault-tolerance layer uses:

* :class:`Tracer` — nested wall-clock spans (``experiment ->
  estimator.fit -> substep``) with optional ``tracemalloc`` peak-memory
  capture, JSONL export, a rendered text tree, and slowest-stage tables;
* :class:`MetricsRegistry` — process-local counters, gauges, and
  fixed-bucket histograms, updated through :func:`record`;
* convergence telemetry — every iterative optimiser emits
  ``(iteration, objective, delta)`` events, stored as
  ``convergence_trace_`` on the fitted estimator and summarised by
  :func:`summarize_trace`;
* :func:`get_logger` / :func:`configure_logging` — named stdlib loggers
  per subsystem (``repro.cluster``, ``repro.experiments``, ...).

See ``docs/observability.md`` for the full guide, including the
measured overhead of the disabled fast path.
"""

from .catalog import METRIC_FAMILIES, METRICS
from .logs import configure_logging, get_logger, level_from_verbosity
from .registry import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    prometheus_name,
    record,
    reset_default_registry,
)
from .telemetry import (
    ConvergenceCapture,
    ConvergenceEvent,
    capture_convergence,
    emit_objective,
    record_convergence,
    summarize_trace,
)
from .tracer import (
    Span,
    TraceContext,
    Tracer,
    current_trace_context,
    current_tracer,
    merge_records,
    new_trace_id,
    read_jsonl,
    render_records,
    render_stage_table,
    slowest_stages,
    trace_shard_path,
    trace_shard_paths,
    trace_span,
    traced_fit,
    write_records_jsonl,
)

__all__ = [
    # tracer
    "Span",
    "TraceContext",
    "Tracer",
    "current_tracer",
    "current_trace_context",
    "new_trace_id",
    "trace_span",
    "traced_fit",
    "read_jsonl",
    "write_records_jsonl",
    "merge_records",
    "trace_shard_path",
    "trace_shard_paths",
    "render_records",
    "render_stage_table",
    "slowest_stages",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS",
    "METRIC_FAMILIES",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "prometheus_name",
    "default_registry",
    "reset_default_registry",
    "record",
    # telemetry
    "ConvergenceEvent",
    "ConvergenceCapture",
    "capture_convergence",
    "emit_objective",
    "record_convergence",
    "summarize_trace",
    # logging
    "get_logger",
    "configure_logging",
    "level_from_verbosity",
]

"""MAFIA-style adaptive grids (Nagesh, Goil & Choudhary 2001) — s72.

CLIQUE's fixed equal-width grid fragments clusters that straddle cell
borders. MAFIA builds an *adaptive* grid per dimension: a fine
histogram is computed first, adjacent fine bins with similar density
are merged into variable-width windows, and a window is dense when its
observed mass exceeds ``alpha`` times its expected mass under
uniformity (so wide windows need proportionally more points). Mining
then proceeds bottom-up over dense windows exactly like CLIQUE.
"""

from __future__ import annotations

import numpy as np

from .grid import connected_components_of_cells
from .lattice import apriori_candidates
from ..core.base import ParamsMixin
from ..core.subspace import SubspaceCluster, SubspaceClustering
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..utils.validation import check_array, check_in_range

__all__ = ["MAFIA", "adaptive_windows"]


register(TaxonomyEntry(
    key="mafia",
    reference="Nagesh et al., 2001",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="no dissimilarity",
    flexible_definition=False,
    estimator="repro.subspace.mafia.MAFIA",
    notes="adaptive variable-width grid windows",
))


def adaptive_windows(values, *, n_fine_bins=30, merge_tolerance=0.4):
    """Merge adjacent fine histogram bins into variable-width windows.

    Two neighbouring bins merge when their densities (count per unit
    width) differ by at most ``merge_tolerance`` relative to the larger.

    Returns
    -------
    edges : ndarray — window boundaries (length n_windows + 1).
    """
    values = np.asarray(values, dtype=np.float64)
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo
    # Treat numerically degenerate ranges (span below float resolution
    # of the bin arithmetic) as constant columns.
    if span <= max(abs(lo), abs(hi), 1.0) * n_fine_bins * np.finfo(float).eps:
        return np.array([lo, lo + 1.0])
    counts, fine_edges = np.histogram(values, bins=n_fine_bins,
                                      range=(lo, hi))
    densities = counts / (fine_edges[1:] - fine_edges[:-1])
    edges = [fine_edges[0]]
    run_density = densities[0]
    run_bins = 1
    for i in range(1, n_fine_bins):
        top = max(run_density, densities[i])
        if top == 0 or abs(densities[i] - run_density) <= merge_tolerance * top:
            # extend the window; track its running mean density
            run_density = (run_density * run_bins + densities[i]) / (run_bins + 1)
            run_bins += 1
        else:
            edges.append(fine_edges[i])
            run_density = densities[i]
            run_bins = 1
    edges.append(fine_edges[-1])
    return np.asarray(edges)


class MAFIA(ParamsMixin):
    """Bottom-up subspace clustering on adaptive windows.

    Parameters
    ----------
    alpha : float > 1
        Density factor: a window is dense when it holds more than
        ``alpha * expected`` objects, where ``expected`` is the uniform
        share of its width product.
    n_fine_bins : int
        Resolution of the initial per-dimension histogram.
    merge_tolerance : float
        Relative density tolerance for merging adjacent bins.
    max_dim, min_cluster_size : as in CLIQUE.

    Attributes
    ----------
    clusters_ : SubspaceClustering
    window_edges_ : list of ndarray — adaptive boundaries per dimension.
    subspaces_visited_ : int
    """

    def __init__(self, alpha=2.0, n_fine_bins=30, merge_tolerance=0.4,
                 max_dim=None, min_cluster_size=2):
        self.alpha = alpha
        self.n_fine_bins = n_fine_bins
        self.merge_tolerance = merge_tolerance
        self.max_dim = max_dim
        self.min_cluster_size = min_cluster_size
        self.clusters_ = None
        self.window_edges_ = None
        self.subspaces_visited_ = None

    def fit(self, X):
        X = check_array(X)
        check_in_range(self.alpha, "alpha", low=1.0, inclusive_low=False)
        n, d = X.shape
        max_dim = d if self.max_dim is None else min(int(self.max_dim), d)
        edges = [
            adaptive_windows(X[:, j], n_fine_bins=self.n_fine_bins,
                             merge_tolerance=self.merge_tolerance)
            for j in range(d)
        ]
        # Window index and relative width per object/dimension.
        win_idx = np.empty((n, d), dtype=np.int64)
        rel_width = []
        for j in range(d):
            e = edges[j]
            idx = np.searchsorted(e, X[:, j], side="right") - 1
            np.clip(idx, 0, e.size - 2, out=idx)
            win_idx[:, j] = idx
            rel_width.append((e[1:] - e[:-1]) / (e[-1] - e[0]))

        visited = 0
        clusters = []

        def dense_cells(subspace):
            nonlocal visited
            visited += 1
            cells = {}
            sub = win_idx[:, list(subspace)]
            for i in range(n):
                cells.setdefault(tuple(sub[i]), []).append(i)
            out = {}
            for cell, objs in cells.items():
                expected = n
                for j, w in zip(subspace, cell):
                    expected *= rel_width[j][w]
                if len(objs) > self.alpha * expected and \
                        len(objs) >= self.min_cluster_size:
                    out[cell] = np.asarray(objs, dtype=np.int64)
            return out

        frontier = []
        for j in range(d):
            cells = dense_cells((j,))
            if cells:
                frontier.append((j,))
                for comp, objs in connected_components_of_cells(cells):
                    clusters.append(SubspaceCluster(objs.tolist(), (j,),
                                                    quality=objs.size / n))
        size = 1
        while frontier and size < max_dim:
            next_frontier = []
            for cand in apriori_candidates(frontier):
                cells = dense_cells(cand)
                if not cells:
                    continue
                next_frontier.append(cand)
                for comp, objs in connected_components_of_cells(cells):
                    if objs.size >= self.min_cluster_size:
                        clusters.append(SubspaceCluster(
                            objs.tolist(), cand, quality=objs.size / n))
            frontier = next_frontier
            size += 1
        self.clusters_ = SubspaceClustering(clusters, name="MAFIA")
        self.window_edges_ = edges
        self.subspaces_visited_ = visited
        return self

    def fit_predict(self, X):
        """Fit and return the :class:`SubspaceClustering` result."""
        return self.fit(X).clusters_

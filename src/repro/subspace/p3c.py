"""P3C — projected clustering via cluster cores (Moise, Sander & Ester
2006) — slides 72/78.

P3C works statistically, bottom-up from one-dimensional evidence:

1. **intervals**: per dimension, split the range into bins and keep the
   bins whose support is significantly above the uniform expectation
   (Binomial upper-tail test with Bonferroni correction); adjacent
   significant bins merge into intervals;
2. **cluster cores**: combine intervals across dimensions apriori-style,
   keeping a combination only while its observed joint support remains
   significantly larger than expected from the one lower-dimensional
   projection with the smallest support (the paper's core condition);
   maximal surviving combinations are the cores;
3. **assignment**: every object joins the core whose box it matches on
   most dimensions (ties to the higher-dimensional core); objects
   matching none stay outliers.
"""

from __future__ import annotations

import numpy as np
from scipy import stats  # repro: noqa[RL002] - Poisson/chi-square tails have no NumPy substrate

from ..core.base import ParamsMixin
from ..core.subspace import SubspaceCluster, SubspaceClustering
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..utils.validation import check_count, check_in_range

__all__ = ["P3C", "significant_intervals"]


register(TaxonomyEntry(
    key="p3c",
    reference="Moise et al., 2006",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="no dissimilarity",
    flexible_definition=False,
    estimator="repro.subspace.p3c.P3C",
    notes="statistically significant intervals -> cluster cores",
))


def significant_intervals(values, *, n_bins=10, alpha=1e-3):
    """Intervals of a 1-d sample with significantly elevated support.

    Bins whose count exceeds the Binomial(n, 1/n_bins) upper tail at
    level ``alpha / n_bins`` (Bonferroni) are marked; adjacent marked
    bins merge. Returns a list of ``(low, high, support_indices)``.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    lo, hi = float(values.min()), float(values.max())
    if hi <= lo:
        return []
    edges = np.linspace(lo, hi, n_bins + 1)
    idx = np.clip(np.searchsorted(edges, values, side="right") - 1,
                  0, n_bins - 1)
    counts = np.bincount(idx, minlength=n_bins)
    threshold_p = alpha / n_bins
    marked = np.array([
        stats.binom.sf(c - 1, n, 1.0 / n_bins) <= threshold_p
        for c in counts
    ])
    intervals = []
    b = 0
    while b < n_bins:
        if not marked[b]:
            b += 1
            continue
        start = b
        while b + 1 < n_bins and marked[b + 1]:
            b += 1
        members = np.flatnonzero((idx >= start) & (idx <= b))
        intervals.append((float(edges[start]), float(edges[b + 1]), members))
        b += 1
    return intervals


class P3C(ParamsMixin):
    """Projected clustering via statistically significant cluster cores.

    Parameters
    ----------
    n_bins : int — per-dimension histogram resolution.
    alpha : float — significance level of the interval / core tests.
    max_dim : int or None — cap on core dimensionality.
    min_support : int — minimum objects in a core.

    Attributes
    ----------
    clusters_ : SubspaceClustering — the maximal cluster cores.
    labels_ : ndarray — hard assignment (``-1`` outliers).
    intervals_ : dict dim -> list of (low, high) significant intervals.
    """

    def __init__(self, n_bins=10, alpha=1e-3, max_dim=None, min_support=4):
        self.n_bins = n_bins
        self.alpha = alpha
        self.max_dim = max_dim
        self.min_support = min_support
        self.clusters_ = None
        self.labels_ = None
        self.intervals_ = None

    def fit(self, X):
        X = self._check_array(X)
        check_in_range(self.alpha, "alpha", low=0.0, high=1.0,
                       inclusive_low=False)
        n_bins = check_count(self.n_bins, "n_bins", low=2, estimator=self)
        check_count(self.min_support, "min_support", estimator=self)
        n, d = X.shape
        max_dim = d if self.max_dim is None else min(int(self.max_dim), d)

        # Step 1: per-dimension significant intervals.
        interval_members = {}    # (dim, interval_idx) -> member indices
        interval_bounds = {}
        per_dim = {}
        for j in range(d):
            found = significant_intervals(X[:, j], n_bins=n_bins,
                                          alpha=self.alpha)
            per_dim[j] = [(lo, hi) for lo, hi, _ in found]
            for t, (lo, hi, members) in enumerate(found):
                interval_members[(j, t)] = frozenset(members.tolist())
                interval_bounds[(j, t)] = (lo, hi)

        # Step 2: apriori combination of intervals into cores. Nodes of
        # the lattice are tuples of (dim, interval) pairs with distinct
        # dims; we encode them by their sorted (dim, t) keys.
        def support(combo):
            sets = [interval_members[key] for key in combo]
            out = sets[0]
            for s in sets[1:]:
                out = out & s
            return out

        def is_core(combo, members):
            if len(members) < self.min_support:
                return False
            if len(combo) == 1:
                return True
            # Expected support if one interval were independent of the
            # rest: |rest| * p(interval). Take the strictest parent.
            worst_p = 1.0
            for i, key in enumerate(combo):
                rest = combo[:i] + combo[i + 1:]
                rest_support = len(support(rest))
                p_int = len(interval_members[key]) / n
                expected = rest_support * p_int
                pval = stats.binom.sf(len(members) - 1, max(rest_support, 1),
                                      min(p_int, 1.0))
                worst_p = min(worst_p, pval)
                if expected >= len(members):
                    return False
            return worst_p <= self.alpha

        level = []
        survivors = {}
        for key in interval_members:
            combo = (key,)
            members = support(combo)
            if is_core(combo, members):
                level.append(combo)
                survivors[combo] = members
        all_cores = dict(survivors)
        size = 1
        while level and size < max_dim:
            # join combos sharing all but the last key, distinct dims
            keys_sorted = sorted(level)
            next_level = []
            seen = set()
            for i, a in enumerate(keys_sorted):
                for b in keys_sorted[i + 1:]:
                    if a[:-1] != b[:-1]:
                        continue
                    if a[-1][0] == b[-1][0]:
                        continue  # same dimension twice
                    cand = a + (b[-1],)
                    if cand in seen:
                        continue
                    seen.add(cand)
                    members = support(cand)
                    if is_core(cand, members):
                        next_level.append(cand)
                        all_cores[cand] = members
            level = next_level
            size += 1

        # Keep only maximal cores (no surviving superset).
        combos = sorted(all_cores, key=len, reverse=True)
        maximal = []
        for combo in combos:
            cset = set(combo)
            if any(cset < set(m) for m in maximal):
                continue
            maximal.append(combo)
        clusters = []
        for combo in maximal:
            members = all_cores[combo]
            dims = tuple(sorted({key[0] for key in combo}))
            if len(dims) < 1 or len(members) < self.min_support:
                continue
            clusters.append(SubspaceCluster(sorted(members), dims,
                                            quality=len(members) / n))

        # Step 3: hard assignment by best-matching core box.
        labels = np.full(n, -1, dtype=np.int64)
        best_match = np.zeros(n, dtype=np.int64)
        for cid, combo in enumerate(maximal[:len(clusters)]):
            matches = np.zeros(n, dtype=np.int64)
            for key in combo:
                j, _ = key
                lo, hi = interval_bounds[key]
                inside = (X[:, j] >= lo) & (X[:, j] <= hi)
                matches += inside.astype(np.int64)
            better = matches > best_match
            full = matches == len(combo)
            update = full & better
            labels[update] = cid
            best_match[update] = matches[update]
        self.clusters_ = SubspaceClustering(clusters, name="P3C")
        self.labels_ = labels
        self.intervals_ = per_dim
        return self

    def fit_predict(self, X):
        """Fit and return the :class:`SubspaceClustering` result."""
        return self.fit(X).clusters_

"""ASCLU (Günnemann et al. 2010) — slides 86-87.

Alternative *subspace* clustering: extend OSCLU with given knowledge.
A result ``Res`` must satisfy all OSCLU properties **and** be a valid
alternative to the given clustering ``Known``: for every ``C = (O, S)``
in ``Res``::

    |O \\ AlreadyClustered(Known, C)| / |O| >= alpha

where ``AlreadyClustered(Known, C)`` unions the objects of those Known
clusters lying in ``C``'s concept group (slide 87) — i.e. a new cluster
may reuse objects of the given knowledge only when it groups them under
a genuinely different concept (subspace).
"""

from __future__ import annotations

from .osclu import OSCLU, covers_subspace
from ..core.base import ParamsMixin
from ..core.subspace import SubspaceClustering
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..observability.telemetry import record_convergence
from ..observability.tracer import traced_fit
from ..utils.validation import check_in_range

__all__ = ["ASCLU", "already_clustered", "is_valid_alternative_cluster"]


register(TaxonomyEntry(
    key="asclu",
    reference="Günnemann et al., 2010",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=True,
    n_clusterings=">=2",
    view_detection="dissimilarity",
    flexible_definition=False,
    estimator="repro.subspace.asclu.ASCLU",
    notes="OSCLU properties + valid alternative w.r.t. Known",
))


def already_clustered(known, cluster, beta):
    """Union of objects of Known clusters in ``cluster``'s concept group."""
    out = set()
    for k in known:
        if covers_subspace(cluster.dims, k.dims, beta) or \
                covers_subspace(k.dims, cluster.dims, beta):
            out |= k.objects
    return out


def is_valid_alternative_cluster(cluster, known, alpha, beta):
    """Slide-87 condition for one cluster."""
    already = already_clustered(known, cluster, beta)
    return len(cluster.objects - already) / len(cluster.objects) >= alpha


class ASCLU(ParamsMixin):
    """Alternative subspace clustering given Known knowledge.

    Parameters
    ----------
    alpha, beta : as in OSCLU (alpha doubles as the alternative-validity
        threshold, following the paper).
    local_interestingness, max_clusters : forwarded to OSCLU.

    Attributes
    ----------
    clusters_ : SubspaceClustering — valid alternative clustering Res.
    rejected_known_overlap_ : int — candidates dropped for covering the
        given knowledge under a similar concept.
    n_iter_ : int — candidates the inner OSCLU greedy examined.
    convergence_trace_ : list of ConvergenceEvent — the inner OSCLU's
        running objective over the filtered candidates (nondecreasing).
    """

    def __init__(self, alpha=0.5, beta=0.5, local_interestingness=None,
                 max_clusters=None):
        self.alpha = alpha
        self.beta = beta
        self.local_interestingness = local_interestingness
        self.max_clusters = max_clusters
        self.clusters_ = None
        self.rejected_known_overlap_ = None
        self.n_iter_ = None
        self.convergence_trace_ = None

    @traced_fit
    def fit(self, candidates, known):
        check_in_range(self.alpha, "alpha", low=0.0, high=1.0,
                       inclusive_low=False)
        check_in_range(self.beta, "beta", low=0.0, high=1.0,
                       inclusive_low=False)
        if not isinstance(candidates, SubspaceClustering):
            candidates = SubspaceClustering(candidates)
        if not isinstance(known, SubspaceClustering):
            known = SubspaceClustering(known)
        if len(candidates) == 0:
            raise ValidationError("no candidate clusters to select from")
        valid = []
        rejected = 0
        for c in candidates:
            if c in set(known):
                rejected += 1
                continue
            if is_valid_alternative_cluster(c, known, self.alpha, self.beta):
                valid.append(c)
            else:
                rejected += 1
        osclu = OSCLU(
            alpha=self.alpha, beta=self.beta,
            local_interestingness=self.local_interestingness,
            max_clusters=self.max_clusters,
        )
        if valid:
            osclu.fit(SubspaceClustering(valid))
            result = osclu.clusters_
            self.n_iter_ = osclu.n_iter_
            trace = osclu.convergence_trace_
        else:
            result = SubspaceClustering([])
            self.n_iter_ = 0
            trace = []
        self.clusters_ = SubspaceClustering(list(result), name="ASCLU")
        self.rejected_known_overlap_ = rejected
        record_convergence(self, trace)
        return self

    def fit_predict(self, candidates, known):
        """Select and return the alternative :class:`SubspaceClustering`."""
        return self.fit(candidates, known).clusters_

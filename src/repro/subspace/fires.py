"""FIRES-style approximate subspace clustering (Kriegel et al. 2005) —
slide 74.

FIRES avoids the exponential lattice climb entirely:

1. **base clusters** — cluster every single dimension. FIRES allows
   any base technique; the default here is the statistically
   significant 1-d intervals of :func:`repro.subspace.p3c.significant_intervals`
   (plain 1-d DBSCAN chains through dense uniform backgrounds), with
   ``base="dbscan"`` available for sparse data;
2. **merge graph** — two base clusters are *best-merge candidates* when
   their object sets overlap strongly (Jaccard similarity above a
   threshold); connected components of this graph approximate
   higher-dimensional clusters;
3. **refinement** — each component proposes a subspace (the union of
   its members' dimensions) and a tentative object set; a final DBSCAN
   in the proposed subspace polishes the member set.

The result approximates the maximal-dimensional clusters directly in
time linear in the number of base clusters — the efficiency trade the
slide describes.
"""

from __future__ import annotations

import numpy as np

from ..cluster.dbscan import dbscan_from_neighborhoods
from ..core.base import ParamsMixin
from ..core.subspace import SubspaceCluster, SubspaceClustering
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..utils.linalg import cdist_sq
from ..utils.validation import check_array, check_in_range

__all__ = ["FIRES"]


register(TaxonomyEntry(
    key="fires",
    reference="Kriegel et al., 2005",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="no dissimilarity",
    flexible_definition=True,
    estimator="repro.subspace.fires.FIRES",
    notes="merges 1-d base clusters; approximate, no lattice climb",
))


def _jaccard(a, b):
    inter = len(a & b)
    if inter == 0:
        return 0.0
    return inter / (len(a) + len(b) - inter)


class FIRES(ParamsMixin):
    """Approximate subspace clustering from 1-d base clusters.

    Parameters
    ----------
    eps : float — DBSCAN radius (refinement runs, and base runs when
        ``base="dbscan"``).
    min_pts : int — DBSCAN core threshold.
    merge_threshold : float in (0, 1]
        Jaccard overlap above which two base clusters are best-merge
        candidates.
    base : {"intervals", "dbscan"}
        Base-cluster generator per dimension.
    base_alpha : float — significance level of the interval base.
    min_cluster_size : int

    Attributes
    ----------
    clusters_ : SubspaceClustering — refined maximal-dimensional
        approximations (base clusters whose component stayed 1-d are
        kept as-is).
    base_clusters_ : SubspaceClustering — the 1-d evidence.
    n_components_ : int — merge-graph components.
    """

    def __init__(self, eps=0.5, min_pts=8, merge_threshold=0.5,
                 base="intervals", base_alpha=1e-3, min_cluster_size=4):
        self.eps = eps
        self.min_pts = min_pts
        self.merge_threshold = merge_threshold
        self.base = base
        self.base_alpha = base_alpha
        self.min_cluster_size = min_cluster_size
        self.clusters_ = None
        self.base_clusters_ = None
        self.n_components_ = None

    def _dbscan(self, X, objects, dims):
        sub = X[np.ix_(objects, list(dims))]
        d2 = cdist_sq(sub, sub)
        eps2 = self.eps * self.eps
        neighborhoods = [np.flatnonzero(row <= eps2) for row in d2]
        labels, _ = dbscan_from_neighborhoods(neighborhoods, self.min_pts)
        out = []
        for cid in np.unique(labels):
            if cid == -1:
                continue
            members = objects[labels == cid]
            if members.size >= self.min_cluster_size:
                out.append(members)
        return out

    def fit(self, X):
        X = check_array(X)
        check_in_range(self.eps, "eps", low=0.0, inclusive_low=False)
        check_in_range(self.merge_threshold, "merge_threshold",
                       low=0.0, high=1.0, inclusive_low=False)
        if self.base not in ("intervals", "dbscan"):
            from ..exceptions import ValidationError

            raise ValidationError(f"unknown base {self.base!r}")
        n, d = X.shape
        everything = np.arange(n)
        base = []      # (dim, frozenset objects)
        for j in range(d):
            if self.base == "dbscan":
                groups = self._dbscan(X, everything, (j,))
            else:
                from .p3c import significant_intervals

                groups = [
                    members
                    for _lo, _hi, members in significant_intervals(
                        X[:, j], alpha=self.base_alpha)
                    if members.size >= self.min_cluster_size
                ]
            for members in groups:
                base.append((j, frozenset(members.tolist())))
        self.base_clusters_ = SubspaceClustering(
            [SubspaceCluster(sorted(objs), (j,)) for j, objs in base],
            name="FIRES-base",
        )
        # Merge graph over base clusters.
        m = len(base)
        parent = list(range(m))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a, b):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for i in range(m):
            for jdx in range(i + 1, m):
                if base[i][0] == base[jdx][0]:
                    continue  # same dimension: never merge
                if _jaccard(base[i][1], base[jdx][1]) >= self.merge_threshold:
                    union(i, jdx)
        components = {}
        for i in range(m):
            components.setdefault(find(i), []).append(i)
        clusters = []
        for comp in components.values():
            dims = tuple(sorted({base[i][0] for i in comp}))
            if len(comp) == 1:
                j, objs = base[comp[0]]
                clusters.append(SubspaceCluster(sorted(objs), (j,),
                                                quality=len(objs) / n))
                continue
            # Tentative objects: union of members, then refine with a
            # DBSCAN run in the proposed subspace.
            tentative = set()
            for i in comp:
                tentative |= base[i][1]
            tentative = np.asarray(sorted(tentative), dtype=np.int64)
            refined = self._dbscan(X, tentative, dims)
            if refined:
                for members in refined:
                    clusters.append(SubspaceCluster(
                        members.tolist(), dims, quality=members.size / n))
            else:
                clusters.append(SubspaceCluster(
                    tentative.tolist(), dims, quality=tentative.size / n))
        self.clusters_ = SubspaceClustering(clusters, name="FIRES")
        self.n_components_ = len(components)
        return self

    def fit_predict(self, X):
        """Fit and return the :class:`SubspaceClustering` result."""
        return self.fit(X).clusters_

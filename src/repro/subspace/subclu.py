"""SUBCLU (Kailing, Kriegel & Kröger 2004b) — slide 74.

Density-connected subspace clustering: run DBSCAN in every 1-dimensional
subspace, then climb the lattice apriori-style. The key monotonicity:
if ``O`` is a density-connected set in ``S``, it is density-connected in
every ``T ⊆ S`` — so a candidate subspace is only processed when all its
one-smaller projections contain clusters, and DBSCAN in the candidate
only needs to scan objects clustered in one generating projection (the
smallest one), not the full database.

Compared to the grid methods, SUBCLU finds arbitrarily-shaped clusters
and is noise-robust, at a much higher runtime (the slide's own
assessment — measurable in the F9 bench).
"""

from __future__ import annotations

import numpy as np

from .lattice import apriori_candidates
from ..cluster.dbscan import dbscan_from_neighborhoods
from ..core.base import ParamsMixin
from ..core.subspace import SubspaceCluster, SubspaceClustering
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..utils.linalg import cdist_sq
from ..utils.validation import check_count, check_in_range

__all__ = ["SUBCLU"]


register(TaxonomyEntry(
    key="subclu",
    reference="Kailing et al., 2004b",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="no dissimilarity",
    flexible_definition=False,
    estimator="repro.subspace.subclu.SUBCLU",
    notes="DBSCAN per subspace, apriori on subspaces",
))


class SUBCLU(ParamsMixin):
    """Density-connected subspace clustering.

    Parameters
    ----------
    eps : float
        DBSCAN radius (shared across subspaces, as in the paper).
    min_pts : int
        DBSCAN core threshold.
    max_dim : int or None
        Cap on cluster dimensionality.
    min_cluster_size : int

    Attributes
    ----------
    clusters_ : SubspaceClustering
    subspaces_visited_ : int
    candidate_objects_scanned_ : int
        Total objects DBSCAN actually touched — shows the saving from
        restricting candidate runs to previously clustered objects.
    """

    def __init__(self, eps=0.5, min_pts=5, max_dim=None, min_cluster_size=2):
        self.eps = eps
        self.min_pts = min_pts
        self.max_dim = max_dim
        self.min_cluster_size = min_cluster_size
        self.clusters_ = None
        self.subspaces_visited_ = None
        self.candidate_objects_scanned_ = None

    def _dbscan_on(self, X, objects, dims):
        """DBSCAN restricted to ``objects`` using only ``dims`` coords.

        Returns a list of object-index arrays (global indices).
        """
        sub = X[np.ix_(objects, list(dims))]
        d2 = cdist_sq(sub, sub)
        eps2 = self.eps * self.eps
        neighborhoods = [np.flatnonzero(row <= eps2) for row in d2]
        labels, _ = dbscan_from_neighborhoods(neighborhoods, self.min_pts)
        out = []
        for cid in np.unique(labels):
            if cid == -1:
                continue
            members = objects[labels == cid]
            if members.size >= self.min_cluster_size:
                out.append(members)
        return out

    def fit(self, X):
        X = self._check_array(X)
        check_in_range(self.eps, "eps", low=0.0, inclusive_low=False)
        check_count(self.min_pts, "min_pts", estimator=self)
        check_count(self.min_cluster_size, "min_cluster_size", estimator=self)
        n, d = X.shape
        max_dim = d if self.max_dim is None else min(int(self.max_dim), d)
        all_objects = np.arange(n)
        clusters = []
        visited = 0
        scanned = 0
        # clusters_by_subspace: subspace -> list of member arrays
        by_subspace = {}
        for j in range(d):
            visited += 1
            scanned += n
            found = self._dbscan_on(X, all_objects, (j,))
            if found:
                by_subspace[(j,)] = found
        size = 1
        frontier = sorted(by_subspace.keys())
        while frontier and size < max_dim:
            candidates = apriori_candidates(frontier)
            next_frontier = []
            for cand in candidates:
                visited += 1
                # Generating subspace: the one-smaller projection with the
                # fewest clustered objects (best-case pruning).
                best_gen = None
                for i in range(len(cand)):
                    sub = cand[:i] + cand[i + 1:]
                    if sub not in by_subspace:
                        best_gen = None
                        break
                    total = int(sum(m.size for m in by_subspace[sub]))
                    if best_gen is None or total < best_gen[0]:
                        best_gen = (total, sub)
                if best_gen is None:
                    continue
                found = []
                for members in by_subspace[best_gen[1]]:
                    scanned += members.size
                    found.extend(self._dbscan_on(X, members, cand))
                if found:
                    by_subspace[cand] = found
                    next_frontier.append(cand)
            frontier = next_frontier
            size += 1
        for subspace, member_lists in by_subspace.items():
            for members in member_lists:
                clusters.append(SubspaceCluster(
                    members.tolist(), subspace, quality=members.size / n
                ))
        self.clusters_ = SubspaceClustering(clusters, name="SUBCLU")
        self.subspaces_visited_ = visited
        self.candidate_objects_scanned_ = scanned
        return self

    def fit_predict(self, X):
        """Fit and return the :class:`SubspaceClustering` result."""
        return self.fit(X).clusters_

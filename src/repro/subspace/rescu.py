"""RESCU-style relevance selection (Müller et al. 2009c) — slide 79.

Abstract relevance model: from the set ``ALL`` of valid subspace
clusters, pick the relevant clustering ``M ⊆ ALL`` that maximises total
*interestingness* while excluding *redundant* clusters — a cluster is
redundant when the objects it contributes are mostly covered already.

The greedy set-cover-style approximation: candidates sorted by
interestingness; admit a candidate when the fraction of not-yet-covered
objects it contributes is at least ``min_new_fraction``.

Unlike OSCLU, RESCU's redundancy is purely object-based — it does **not**
model similarity between subspaces (the tutorial's criticism on
slide 79), which experiment F10 makes visible.
"""

from __future__ import annotations

from ..core.base import ParamsMixin
from ..core.subspace import SubspaceClustering
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..utils.validation import check_in_range

__all__ = ["RESCU", "interestingness_size_dim"]


register(TaxonomyEntry(
    key="rescu",
    reference="Müller et al., 2009c",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="no dissimilarity",
    flexible_definition=True,
    estimator="repro.subspace.rescu.RESCU",
    notes="object-coverage redundancy; subspace similarity not modelled",
))


def interestingness_size_dim(cluster, *, dim_weight=0.5):
    """Default interestingness: ``|O| * |S|^dim_weight``.

    Rewards large clusters, mildly rewards higher-dimensional ones (the
    size/dimensionality trade-off the paper parameterises).
    """
    return cluster.n_objects * (cluster.dimensionality ** dim_weight)


class RESCU(ParamsMixin):
    """Greedy relevant-subspace-clustering selection.

    Parameters
    ----------
    min_new_fraction : float in (0, 1]
        Redundancy bar: a candidate must contribute at least this
        fraction of new (uncovered) objects.
    interestingness : callable ``(SubspaceCluster) -> float``
        Exchangeable scoring (the flexible model of the paper).
    max_clusters : int or None
        Optional cap on the result size.

    Attributes
    ----------
    clusters_ : SubspaceClustering — the relevant clustering.
    rejected_redundant_ : int — candidates dropped for redundancy.
    """

    def __init__(self, min_new_fraction=0.3,
                 interestingness=interestingness_size_dim, max_clusters=None):
        self.min_new_fraction = min_new_fraction
        self.interestingness = interestingness
        self.max_clusters = max_clusters
        self.clusters_ = None
        self.rejected_redundant_ = None

    def fit(self, candidates):
        check_in_range(self.min_new_fraction, "min_new_fraction",
                       low=0.0, high=1.0, inclusive_low=False)
        if not isinstance(candidates, SubspaceClustering):
            candidates = SubspaceClustering(candidates)
        if len(candidates) == 0:
            raise ValidationError("no candidate clusters to select from")
        scored = sorted(
            candidates, key=self.interestingness, reverse=True
        )
        covered = set()
        selected = []
        rejected = 0
        for c in scored:
            if self.max_clusters is not None and len(selected) >= self.max_clusters:
                break
            new = len(c.objects - covered) / len(c.objects)
            if selected and new < self.min_new_fraction:
                rejected += 1
                continue
            selected.append(c)
            covered |= c.objects
        self.clusters_ = SubspaceClustering(selected, name="RESCU")
        self.rejected_redundant_ = rejected
        return self

    def fit_predict(self, candidates):
        """Select and return the relevant :class:`SubspaceClustering`."""
        return self.fit(candidates).clusters_

"""Grid discretisation and dense-unit machinery (CLIQUE's data model).

CLIQUE (slide 69) divides the data space into a fixed grid of ``xi``
equal-length intervals per dimension; a *unit* is a cell in the grid of
some subspace, and a unit is *dense* when it holds more objects than a
threshold. Clusters are maximal sets of connected dense units.
"""

from __future__ import annotations

import numpy as np

from ..core.base import ParamsMixin
from ..exceptions import ValidationError
from ..utils.validation import check_array

__all__ = ["GridDiscretization", "connected_components_of_cells"]


class GridDiscretization(ParamsMixin):
    """Equal-width grid over the data's bounding box.

    Parameters
    ----------
    n_intervals : int
        ``xi`` — intervals per dimension.

    Attributes
    ----------
    edges_ : ndarray (n_features, n_intervals + 1)
    cell_index_ : ndarray (n_samples, n_features) of int
        Per-object interval index along every dimension.
    """

    def __init__(self, n_intervals=10):
        if int(n_intervals) < 1:
            raise ValidationError("n_intervals must be >= 1")
        self.n_intervals = int(n_intervals)
        self.edges_ = None
        self.cell_index_ = None
        self.n_samples_ = None
        self.n_features_ = None

    def fit(self, X):
        X = check_array(X)
        n, d = X.shape
        xi = self.n_intervals
        mins = X.min(axis=0)
        maxs = X.max(axis=0)
        spans = np.where(maxs > mins, maxs - mins, 1.0)
        # Right-open intervals; clamp the max into the last cell.
        idx = np.floor((X - mins) / spans[None, :] * xi).astype(np.int64)
        np.clip(idx, 0, xi - 1, out=idx)
        self.edges_ = np.stack([
            np.linspace(mins[j], mins[j] + spans[j], xi + 1) for j in range(d)
        ])
        self.cell_index_ = idx
        self.n_samples_ = n
        self.n_features_ = d
        return self

    def _require_fitted(self):
        if self.cell_index_ is None:
            raise ValidationError("GridDiscretization is not fitted")

    def cells_in_subspace(self, dims):
        """Map cell-coordinate tuple -> array of object indices, for the
        grid restricted to ``dims``."""
        self._require_fitted()
        dims = tuple(int(d) for d in dims)
        sub = self.cell_index_[:, dims]
        if self.n_samples_ < 1024:
            # Plain grouping loop wins on small data (less call overhead).
            cells = {}
            for i in range(self.n_samples_):
                key = tuple(sub[i])
                cells.setdefault(key, []).append(i)
            return {k: np.asarray(v, dtype=np.int64)
                    for k, v in cells.items()}
        # Vectorised grouping for large data: encode each row as a single
        # integer key (mixed radix over the grid resolution), sort, then
        # split runs.
        radix = np.asarray(
            [self.n_intervals ** p for p in range(len(dims))],
            dtype=np.int64,
        )
        codes = sub @ radix
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        groups = np.split(order, boundaries)
        starts = np.concatenate(([0], boundaries))
        return {
            tuple(sub[order[s]]): np.sort(g)
            for s, g in zip(starts, groups)
        }

    def dense_units(self, dims, threshold):
        """Cells in subspace ``dims`` with more than ``threshold`` objects.

        ``threshold`` is an absolute object count; returns the same
        mapping as :meth:`cells_in_subspace`, filtered.
        """
        cells = self.cells_in_subspace(dims)
        return {k: v for k, v in cells.items() if v.size > threshold}

    def cell_density(self, dims):
        """Fraction of objects per cell (ENCLUS's density vector)."""
        cells = self.cells_in_subspace(dims)
        return np.array([v.size / self.n_samples_ for v in cells.values()])


def connected_components_of_cells(cells):
    """Group dense cells into clusters of grid-adjacent cells.

    Two cells are adjacent when they differ by exactly 1 in one
    coordinate and are equal elsewhere (CLIQUE's connectivity).

    Parameters
    ----------
    cells : dict mapping coordinate-tuple -> object index array

    Returns
    -------
    list of (list of coordinate tuples, ndarray of object indices)
    """
    remaining = set(cells.keys())
    components = []
    while remaining:
        seed = remaining.pop()
        comp = [seed]
        frontier = [seed]
        while frontier:
            cell = frontier.pop()
            for j in range(len(cell)):
                for delta in (-1, 1):
                    nb = cell[:j] + (cell[j] + delta,) + cell[j + 1:]
                    if nb in remaining:
                        remaining.remove(nb)
                        comp.append(nb)
                        frontier.append(nb)
        objs = np.concatenate([cells[c] for c in comp])
        components.append((comp, np.unique(objs)))
    return components

"""DOC / MineClus-style Monte-Carlo projected clustering (Procopiuc et
al. 2002; Yiu & Mamoulis 2003) — slides 66/72.

DOC finds one projected cluster at a time: repeatedly sample a seed
point ``p`` and a small discriminating set ``S``; the candidate
subspace contains every dimension on which all of ``S`` stays within
``w`` of ``p``; the candidate cluster is every point within ``w`` of
``p`` on those dimensions. Candidates are scored with the paper's
quality

    mu(a, b) = a * (1 / beta) ** b

(``a`` objects, ``b`` dimensions, ``beta`` in (0, 0.5] trades size for
dimensionality) and the best candidate wins. The full partitioning
("greedy DOC") extracts ``n_clusters`` clusters by repeating on the
residual points; flexible cell positioning is what distinguishes it
from grid methods (slide 72).
"""

from __future__ import annotations

import numpy as np

from ..core.base import ParamsMixin
from ..core.subspace import SubspaceCluster, SubspaceClustering
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..utils.validation import (
    check_array,
    check_in_range,
    check_random_state,
)

__all__ = ["DOC", "doc_quality"]


register(TaxonomyEntry(
    key="doc",
    reference="Procopiuc et al., 2002",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.ITERATIVE,
    given_knowledge=False,
    n_clusterings="1",
    view_detection="no dissimilarity",
    flexible_definition=False,
    estimator="repro.subspace.doc.DOC",
    notes="Monte-Carlo projected clustering, flexible cell positioning",
))


def doc_quality(n_objects, n_dims, beta=0.25):
    """DOC's quality function ``mu(a, b) = a * (1/beta)^b``."""
    if beta <= 0 or beta > 0.5:
        raise ValidationError("beta must lie in (0, 0.5]")
    return float(n_objects) * (1.0 / beta) ** n_dims


class DOC(ParamsMixin):
    """Greedy Monte-Carlo projected clustering.

    Parameters
    ----------
    n_clusters : int
        Clusters to extract greedily (points of found clusters are
        removed before the next round).
    w : float
        Half-width of the projected cluster box per dimension.
    beta : float in (0, 0.5]
        Quality trade-off between size and dimensionality.
    n_trials : int
        Monte-Carlo samples per extracted cluster.
    discriminating_size : int
        Size of the sampled discriminating set ``S``.
    min_cluster_size : int
        Candidates below this size are discarded.
    random_state : int, Generator or None

    Attributes
    ----------
    labels_ : ndarray — partition with ``-1`` for unclaimed points.
    clusters_ : SubspaceClustering — the (objects, dims) results.
    qualities_ : list of float — mu value per extracted cluster.
    """

    def __init__(self, n_clusters=3, w=1.0, beta=0.25, n_trials=200,
                 discriminating_size=5, min_cluster_size=4,
                 random_state=None):
        self.n_clusters = n_clusters
        self.w = w
        self.beta = beta
        self.n_trials = n_trials
        self.discriminating_size = discriminating_size
        self.min_cluster_size = min_cluster_size
        self.random_state = random_state
        self.labels_ = None
        self.clusters_ = None
        self.qualities_ = None

    def _best_cluster(self, X, available, rng):
        """One DOC round on the available points; returns (objs, dims, mu)."""
        n_avail = available.size
        best = None
        s = min(self.discriminating_size, max(1, n_avail - 1))
        for _ in range(int(self.n_trials)):
            p_idx = available[rng.integers(n_avail)]
            others = available[available != p_idx]
            if others.size == 0:
                break
            S = rng.choice(others, size=min(s, others.size), replace=False)
            diff = np.abs(X[S] - X[p_idx][None, :])
            dims = np.flatnonzero((diff <= self.w).all(axis=0))
            if dims.size == 0:
                continue
            box = np.abs(X[available][:, dims] - X[p_idx][dims][None, :])
            members = available[(box <= self.w).all(axis=1)]
            if members.size < self.min_cluster_size:
                continue
            mu = doc_quality(members.size, dims.size, beta=self.beta)
            if best is None or mu > best[2]:
                best = (members, tuple(int(d) for d in dims), mu)
        return best

    def fit(self, X):
        X = check_array(X, min_samples=2)
        check_in_range(self.w, "w", low=0.0, inclusive_low=False)
        check_in_range(self.beta, "beta", low=0.0, high=0.5,
                       inclusive_low=False)
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        labels = np.full(n, -1, dtype=np.int64)
        available = np.arange(n)
        clusters = []
        qualities = []
        for cid in range(int(self.n_clusters)):
            if available.size < self.min_cluster_size:
                break
            best = self._best_cluster(X, available, rng)
            if best is None:
                break
            members, dims, mu = best
            labels[members] = cid
            clusters.append(SubspaceCluster(members.tolist(), dims,
                                            quality=mu))
            qualities.append(mu)
            available = np.flatnonzero(labels == -1)
        self.labels_ = labels
        self.clusters_ = SubspaceClustering(clusters, name="DOC")
        self.qualities_ = qualities
        return self

    def fit_predict(self, X):
        """Fit and return the partition labels."""
        return self.fit(X).labels_

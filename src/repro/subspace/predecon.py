"""PreDeCon — density-based clustering with subspace PREferences
(Böhm et al. 2004a) — slide 66.

Each point gets a *subspace preference* from its eps-neighbourhood: a
dimension is preferred when the neighbourhood's variance along it is
small (below ``delta``). Distances are then measured with per-point
preference weights — preferred dimensions are up-weighted by a large
factor ``kappa`` — so density connectivity only forms between points
that agree on their low-variance dimensions. A core point must have at
least ``min_pts`` preference-weighted neighbours *and* a preference
dimensionality of at least ``min_preference_dim`` ... bounded above by
``max_preference_dim`` (the paper's lambda: clusters may not prefer
more than lambda dimensions).

Output is both the flat partition and the ``(O, S)`` view (each
cluster's subspace = dimensions preferred by the majority of its
members).
"""

from __future__ import annotations

import numpy as np

from ..cluster.dbscan import dbscan_from_neighborhoods
from ..core.base import BaseClusterer
from ..core.subspace import SubspaceCluster, SubspaceClustering
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..utils.linalg import cdist_sq
from ..utils.validation import check_array, check_in_range

__all__ = ["PreDeCon"]


register(TaxonomyEntry(
    key="predecon",
    reference="Böhm et al., 2004a",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings="1",
    view_detection="no dissimilarity",
    flexible_definition=False,
    estimator="repro.subspace.predecon.PreDeCon",
    notes="per-point subspace preferences weight the density metric",
))


class PreDeCon(BaseClusterer):
    """Density clustering with local subspace preferences.

    Parameters
    ----------
    eps : float — neighbourhood radius (Euclidean, for the preference
        estimation; also the radius of the weighted neighbourhood).
    min_pts : int — core threshold on the weighted neighbourhood.
    delta : float — variance threshold below which a dimension becomes
        preferred.
    kappa : float — weight boost of preferred dimensions (>> 1).
    max_preference_dim : int or None — the paper's ``lambda``: points
        preferring more dimensions than this cannot be cores.

    Attributes
    ----------
    labels_ : ndarray — partition with ``-1`` noise.
    preference_dims_ : list of tuple — preferred dimensions per point.
    clusters_ : SubspaceClustering — clusters with their majority
        preferred subspaces.
    """

    def __init__(self, eps=1.0, min_pts=5, delta=0.25, kappa=100.0,
                 max_preference_dim=None):
        self.eps = eps
        self.min_pts = min_pts
        self.delta = delta
        self.kappa = kappa
        self.max_preference_dim = max_preference_dim
        self.labels_ = None
        self.preference_dims_ = None
        self.clusters_ = None

    def fit(self, X):
        X = check_array(X, min_samples=2)
        check_in_range(self.eps, "eps", low=0.0, inclusive_low=False)
        check_in_range(self.delta, "delta", low=0.0, inclusive_low=False)
        check_in_range(self.kappa, "kappa", low=1.0)
        n, d = X.shape
        d2 = cdist_sq(X, X)
        eps2 = self.eps * self.eps

        # Per-point preference weights from the k-nearest-neighbour
        # variance profile (k-NN is scale-free where a full-dimensional
        # eps-ball starves in the presence of noise dimensions; the
        # paper's eps-neighbourhood estimation assumes low-noise data).
        k_pref = min(n, max(5 * self.min_pts, 30))
        weights = np.ones((n, d))
        pref_dims = []
        for i in range(n):
            nb = np.argpartition(d2[i], k_pref - 1)[:k_pref]
            var = X[nb].var(axis=0)
            preferred = np.flatnonzero(var <= self.delta)
            weights[i, preferred] = self.kappa
            pref_dims.append(tuple(int(j) for j in preferred))

        # Preference-weighted neighbourhoods with the SAME radius eps:
        # weighting preferred dimensions by kappa makes the ball
        # effectively eps/sqrt(kappa) tight along them while staying eps
        # loose elsewhere. The paper's symmetric predicate takes the max
        # of the two points' weighted distances.
        weighted_nb = []
        for i in range(n):
            diff2 = (X - X[i]) ** 2
            di = diff2 @ weights[i]
            dq = np.einsum("ij,ij->i", diff2, weights)
            sym = np.maximum(di, dq)
            weighted_nb.append(np.flatnonzero(sym <= eps2))

        max_pref = d if self.max_preference_dim is None else int(
            self.max_preference_dim)
        core_ok = np.array([
            len(weighted_nb[i]) >= self.min_pts
            and 1 <= len(pref_dims[i]) <= max_pref
            for i in range(n)
        ])
        # Mask non-core expansion: neighbourhoods of non-eligible points
        # shrink to themselves so dbscan_from_neighborhoods's own core
        # test agrees with the preference condition.
        masked = [
            weighted_nb[i] if core_ok[i] else np.array([i], dtype=np.int64)
            for i in range(n)
        ]
        labels, _ = dbscan_from_neighborhoods(masked, self.min_pts)
        self.labels_ = labels
        self.preference_dims_ = pref_dims
        clusters = []
        for cid in np.unique(labels):
            if cid == -1:
                continue
            members = np.flatnonzero(labels == cid)
            votes = np.zeros(d)
            for i in members:
                for j in pref_dims[i]:
                    votes[j] += 1
            dims = tuple(np.flatnonzero(votes >= members.size / 2))
            if len(dims) == 0:
                dims = (int(np.argmax(votes)),)
            clusters.append(SubspaceCluster(members.tolist(), dims,
                                            quality=members.size / n))
        self.clusters_ = SubspaceClustering(clusters, name="PreDeCon")
        return self

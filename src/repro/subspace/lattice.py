"""Subspace-lattice utilities: apriori candidate generation and pruning.

Slide 71: higher-dimensional projections of a non-dense region can be
pruned without loss because density is anti-monotone in the dimension
set — the same principle as frequent itemsets (Agrawal & Srikant 1994).
"""

from __future__ import annotations

from itertools import combinations

from ..exceptions import ValidationError

__all__ = [
    "all_subspaces",
    "apriori_candidates",
    "subsets_one_smaller",
    "is_downward_closed",
]


def all_subspaces(n_dims, max_dim=None):
    """Every non-empty subspace up to ``max_dim`` (sorted tuples).

    The exhaustive ``2^|DIM|`` enumeration of slide 68 — used as the
    no-pruning baseline in experiment F7.
    """
    if n_dims < 1:
        raise ValidationError("n_dims must be >= 1")
    max_dim = n_dims if max_dim is None else min(int(max_dim), n_dims)
    out = []
    for size in range(1, max_dim + 1):
        out.extend(combinations(range(n_dims), size))
    return out


def subsets_one_smaller(subspace):
    """All (|S|-1)-subsets of a subspace tuple."""
    S = tuple(subspace)
    if len(S) <= 1:
        return []
    return [S[:i] + S[i + 1:] for i in range(len(S))]


def apriori_candidates(frequent):
    """Join ``k``-subspaces into ``(k+1)``-candidates, apriori-pruned.

    Two sorted ``k``-tuples sharing their first ``k-1`` entries join into
    a ``(k+1)``-tuple; a candidate survives only if *all* its ``k``-sized
    subsets are in ``frequent`` (the monotonicity prune of slide 71).
    """
    frequent = sorted({tuple(sorted(s)) for s in frequent})
    if not frequent:
        return []
    sizes = {len(s) for s in frequent}
    if len(sizes) != 1:
        raise ValidationError("all frequent subspaces must have equal size")
    freq_set = set(frequent)
    candidates = []
    for i, a in enumerate(frequent):
        for b in frequent[i + 1:]:
            if a[:-1] != b[:-1]:
                continue
            cand = a + (b[-1],)
            if all(sub in freq_set for sub in subsets_one_smaller(cand)):
                candidates.append(cand)
    return candidates


def is_downward_closed(subspaces):
    """Whether a family of subspaces contains all subsets of its members
    (sanity check used by property tests)."""
    family = {tuple(sorted(s)) for s in subspaces}
    for s in family:
        for sub in subsets_one_smaller(s):
            if sub and sub not in family:
                return False
    return True

"""PROCLUS (Aggarwal et al. 1999) — slide 66.

*Projected* clustering: a k-medoids-style partitioning where every
cluster additionally selects its own dimensions. The tutorial presents
it as the contrast case — each object lands in exactly **one** cluster,
i.e. a single clustering solution, unlike subspace clustering's
overlapping ``M = ALL``.

Phases (following the paper):

1. greedy "piercing" selection of well-separated medoid candidates;
2. iterative: per-medoid locality analysis, per-cluster dimension
   selection by most-negative z-scores of average dimension-wise
   distances (``k * avg_dims`` dimensions in total, >= 2 each),
   assignment by segmental Manhattan distance, replacement of the worst
   medoid;
3. refinement: dimensions recomputed from the final assignment.
"""

from __future__ import annotations

import numpy as np

from ..core.base import BaseClusterer
from ..core.subspace import SubspaceCluster, SubspaceClustering
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..utils.linalg import cdist_sq
from ..utils.validation import (
    check_array,
    check_n_clusters,
    check_random_state,
)

__all__ = ["PROCLUS"]


register(TaxonomyEntry(
    key="proclus",
    reference="Aggarwal et al., 1999",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.ITERATIVE,
    given_knowledge=False,
    n_clusterings="1",
    view_detection="no dissimilarity",
    flexible_definition=False,
    estimator="repro.subspace.proclus.PROCLUS",
    notes="projected clustering: ONE partition, per-cluster dims",
))


class PROCLUS(BaseClusterer):
    """Projected clustering with per-cluster dimension selection.

    Parameters
    ----------
    n_clusters : int — ``k``.
    avg_dims : float — average projected dimensionality ``l`` (the
        algorithm selects ``k * l`` (cluster, dim) pairs, >= 2 per
        cluster).
    max_iter : int — medoid-replacement rounds.
    candidate_factor : float — size of the piercing candidate set as a
        multiple of ``k``.
    random_state : int, Generator or None

    Attributes
    ----------
    labels_ : ndarray — the single partition (``-1`` possible after
        outlier refinement is disabled by default, so none here).
    medoid_indices_ : ndarray (k,)
    dims_ : list of tuple — selected dimensions per cluster.
    clusters_ : SubspaceClustering — the projected clusters as
        (objects, dims) pairs for subspace-metric evaluation.
    """

    def __init__(self, n_clusters=3, avg_dims=2.0, max_iter=20,
                 candidate_factor=4.0, random_state=None):
        self.n_clusters = n_clusters
        self.avg_dims = avg_dims
        self.max_iter = max_iter
        self.candidate_factor = candidate_factor
        self.random_state = random_state
        self.labels_ = None
        self.medoid_indices_ = None
        self.dims_ = None
        self.clusters_ = None

    def _greedy_pierce(self, X, n_pick, rng):
        """Greedy farthest-point candidate medoids."""
        n = X.shape[0]
        first = int(rng.integers(n))
        chosen = [first]
        dist = np.sqrt(cdist_sq(X, X[[first]])).ravel()
        for _ in range(n_pick - 1):
            nxt = int(np.argmax(dist))
            chosen.append(nxt)
            dist = np.minimum(dist, np.sqrt(cdist_sq(X, X[[nxt]])).ravel())
        return np.asarray(chosen)

    def _find_dimensions(self, X, medoids):
        """Per-medoid dimension selection via z-scored locality deviations."""
        k = medoids.size
        d = X.shape[1]
        med_pts = X[medoids]
        med_d = np.sqrt(cdist_sq(med_pts, med_pts))
        np.fill_diagonal(med_d, np.inf)
        deltas = med_d.min(axis=1)
        Z = np.empty((k, d))
        for i in range(k):
            dist_to_med = np.sqrt(cdist_sq(X, med_pts[[i]])).ravel()
            local = np.flatnonzero(dist_to_med <= deltas[i])
            if local.size < 2:
                order = np.argsort(dist_to_med)
                local = order[: max(2, X.shape[0] // (10 * k))]
            diffs = np.abs(X[local] - med_pts[i][None, :]).mean(axis=0)
            mu = diffs.mean()
            sigma = diffs.std()
            Z[i] = (diffs - mu) / (sigma if sigma > 0 else 1.0)
        total_dims = max(2 * k, int(round(self.avg_dims * k)))
        dims = [[] for _ in range(k)]
        # Two mandatory dims per cluster: the two most negative z-scores.
        order_per = np.argsort(Z, axis=1)
        for i in range(k):
            dims[i].extend(int(j) for j in order_per[i, :2])
        remaining = total_dims - 2 * k
        if remaining > 0:
            flat = [
                (Z[i, j], i, j)
                for i in range(k) for j in range(d)
                if j not in dims[i]
            ]
            flat.sort()
            for _, i, j in flat[:remaining]:
                dims[i].append(int(j))
        return [tuple(sorted(dset)) for dset in dims]

    @staticmethod
    def _segmental_assign(X, medoids, dims):
        """Assign objects by average Manhattan distance over cluster dims."""
        n = X.shape[0]
        k = medoids.size
        scores = np.empty((n, k))
        for i in range(k):
            dlist = list(dims[i])
            diff = np.abs(X[:, dlist] - X[medoids[i], dlist][None, :])
            scores[:, i] = diff.mean(axis=1)
        return np.argmin(scores, axis=1), scores

    def fit(self, X):
        X = check_array(X, min_samples=2)
        n, d = X.shape
        k = check_n_clusters(self.n_clusters, n)
        if self.avg_dims < 2 or self.avg_dims > d:
            raise ValidationError("avg_dims must lie in [2, n_features]")
        rng = check_random_state(self.random_state)
        n_candidates = min(n, max(k, int(round(self.candidate_factor * k))))
        candidates = self._greedy_pierce(X, n_candidates, rng)
        current = rng.choice(candidates, size=k, replace=False)
        best = None
        for _ in range(int(self.max_iter)):
            dims = self._find_dimensions(X, current)
            labels, scores = self._segmental_assign(X, current, dims)
            cost = float(scores[np.arange(n), labels].mean())
            if best is None or cost < best[0]:
                best = (cost, current.copy(), dims, labels.copy())
            # Replace the medoid of the smallest cluster with a random
            # unused candidate (the paper's bad-medoid swap).
            sizes = np.bincount(labels, minlength=k)
            worst = int(np.argmin(sizes))
            unused = np.setdiff1d(candidates, current)
            if unused.size == 0:
                break
            trial = current.copy()
            trial[worst] = rng.choice(unused)
            current = trial
        _, medoids, dims, labels = best
        # Refinement pass: recompute dimensions from final clusters.
        dims = self._find_dimensions(X, medoids)
        labels, _ = self._segmental_assign(X, medoids, dims)
        self.labels_ = labels.astype(np.int64)
        self.medoid_indices_ = medoids
        self.dims_ = dims
        self.clusters_ = SubspaceClustering(
            [
                SubspaceCluster(np.flatnonzero(labels == i).tolist(), dims[i])
                for i in range(k)
                if np.any(labels == i)
            ],
            name="PROCLUS",
        )
        return self

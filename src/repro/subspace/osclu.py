"""OSCLU (Günnemann et al. 2009) — slides 80-85.

Orthogonal-concept selection over subspace clusters. The notions,
exactly as defined on the slides:

* ``coveredSubspaces_beta(S) = { T ⊆ DIM : |T ∩ S| >= beta * |T| }`` —
  subspace ``T`` represents a *similar concept* to ``S`` when a
  ``beta``-fraction of its dimensions is shared (slide 82);
* the **concept group** of a cluster ``C`` within a clustering ``M`` is
  the set of clusters of ``M`` whose subspaces cover ``C``'s subspace;
* global interestingness ``I_global(C, M)`` = fraction of ``C``'s
  objects not contained in its concept group's clusters (slide 83);
* ``M`` is an *orthogonal clustering* iff every ``C in M`` satisfies
  ``I_global(C, M \\ {C}) >= alpha``;
* the optimum maximises ``sum_C I_local(C)`` over orthogonal clusterings
  — NP-hard by reduction from SetPacking (slide 85), hence the greedy
  approximation implemented here.
"""

from __future__ import annotations

from ..core.base import ParamsMixin
from ..core.subspace import SubspaceClustering
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..observability.telemetry import capture_convergence, record_convergence
from ..observability.tracer import traced_fit
from ..robustness.guard import budget_tick
from ..utils.validation import check_in_range

__all__ = [
    "OSCLU",
    "covers_subspace",
    "concept_group",
    "global_interestingness",
    "is_orthogonal_clustering",
]


register(TaxonomyEntry(
    key="osclu",
    reference="Günnemann et al., 2009",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="dissimilarity",
    flexible_definition=False,
    estimator="repro.subspace.osclu.OSCLU",
    notes="orthogonal concepts via covered-subspace groups; NP-hard optimum",
))


def covers_subspace(S, T, beta):
    """Whether subspace ``T`` is covered by subspace ``S`` at level beta.

    ``T in coveredSubspaces_beta(S)  <=>  |T ∩ S| >= beta * |T|``.
    """
    S, T = frozenset(S), frozenset(T)
    if not T:
        raise ValidationError("T must be non-empty")
    return len(T & S) >= beta * len(T)


def concept_group(cluster, clustering, beta):
    """Clusters of ``clustering`` whose subspace relates to ``cluster``'s.

    Symmetric containment is used: ``K`` is in the group when either
    subspace covers the other at level ``beta`` — two clusters represent
    a similar concept when they share a high fraction of the smaller
    subspace's dimensions.
    """
    S = cluster.dims
    group = []
    for other in clustering:
        if other == cluster:
            continue
        if covers_subspace(S, other.dims, beta) or covers_subspace(other.dims, S, beta):
            group.append(other)
    return group


def global_interestingness(cluster, clustering, beta):
    """``I_global(C, M)``: fraction of new objects in ``C`` within its
    concept group (slide 83)."""
    group = concept_group(cluster, clustering, beta)
    already = set()
    for other in group:
        already |= other.objects
    return len(cluster.objects - already) / len(cluster.objects)


def is_orthogonal_clustering(clustering, alpha, beta):
    """Slide-83 validity: every cluster is >= alpha new in its group."""
    clusters = list(clustering)
    for c in clusters:
        rest = SubspaceClustering([o for o in clusters if o != c])
        if global_interestingness(c, rest, beta) < alpha:
            return False
    return True


class OSCLU(ParamsMixin):
    """Greedy approximation of the optimal orthogonal clustering.

    Parameters
    ----------
    alpha : float in (0, 1]
        Novelty requirement within a concept group.
    beta : float in (0, 1]
        Subspace-overlap level defining "similar concepts";
        ``beta -> 0`` forbids any shared dimension between concepts,
        ``beta = 1`` only groups exact projections (slide 82 extremes).
    local_interestingness : callable ``(SubspaceCluster) -> float`` or None
        ``I_local``; default ``|O| * |S|`` (application-dependent per
        slide 84).
    max_clusters : int or None

    Attributes
    ----------
    clusters_ : SubspaceClustering — the orthogonal clustering.
    objective_ : float — ``sum I_local`` over the selection.
    n_iter_ : int — greedy candidates examined.
    convergence_trace_ : list of ConvergenceEvent — running
        ``sum I_local`` after each examined candidate (nondecreasing:
        candidates are only ever added).
    """

    def __init__(self, alpha=0.5, beta=0.5, local_interestingness=None,
                 max_clusters=None):
        self.alpha = alpha
        self.beta = beta
        self.local_interestingness = local_interestingness
        self.max_clusters = max_clusters
        self.clusters_ = None
        self.objective_ = None
        self.n_iter_ = None
        self.convergence_trace_ = None

    def _ilocal(self, c):
        if self.local_interestingness is not None:
            return float(self.local_interestingness(c))
        return float(c.n_objects * c.dimensionality)

    @traced_fit
    def fit(self, candidates):
        check_in_range(self.alpha, "alpha", low=0.0, high=1.0,
                       inclusive_low=False)
        check_in_range(self.beta, "beta", low=0.0, high=1.0,
                       inclusive_low=False)
        if not isinstance(candidates, SubspaceClustering):
            candidates = SubspaceClustering(candidates)
        if len(candidates) == 0:
            raise ValidationError("no candidate clusters to select from")
        ranked = sorted(candidates, key=self._ilocal, reverse=True)
        selected = []
        examined = 0
        running = 0.0
        with capture_convergence() as capture:
            for c in ranked:
                if (self.max_clusters is not None
                        and len(selected) >= self.max_clusters):
                    break
                examined += 1
                trial = selected + [c]
                # Admitting c must keep every member orthogonal (slide 83's
                # condition applies to the whole clustering, so adding a big
                # cluster may invalidate an earlier small one).
                ok = True
                for member in trial:
                    rest = SubspaceClustering(
                        [o for o in trial if o != member])
                    if (global_interestingness(member, rest, self.beta)
                            < self.alpha):
                        ok = False
                        break
                if ok:
                    selected = trial
                    running += self._ilocal(c)
                budget_tick(objective=running)
        self.clusters_ = SubspaceClustering(selected, name="OSCLU")
        self.objective_ = float(sum(self._ilocal(c) for c in selected))
        self.n_iter_ = examined
        record_convergence(self, capture.events)
        return self

    def fit_predict(self, candidates):
        """Select and return the orthogonal :class:`SubspaceClustering`."""
        return self.fit(candidates).clusters_

"""Paradigm 3 — multiple clusterings by different subspace projections
(tutorial section 4).

Base miners produce the full candidate set ``ALL`` (CLIQUE, SCHISM,
SUBCLU); PROCLUS is the single-partition projected-clustering contrast;
ENCLUS searches for interesting subspaces; the selection models (StatPC,
RESCU, OSCLU, ASCLU) pick a meaningful ``M ⊆ ALL``.
"""

from .asclu import ASCLU, already_clustered, is_valid_alternative_cluster
from .clique import CLIQUE
from .doc import DOC, doc_quality
from .dusc import DUSC, expected_neighbors_uniform
from .fires import FIRES
from .enclus import EnclusSubspaceSearch, subspace_entropy, subspace_interest
from .grid import GridDiscretization, connected_components_of_cells
from .lattice import (
    all_subspaces,
    apriori_candidates,
    is_downward_closed,
    subsets_one_smaller,
)
from .mafia import MAFIA, adaptive_windows
from .orclus import ORCLUS
from .p3c import P3C, significant_intervals
from .osclu import (
    OSCLU,
    concept_group,
    covers_subspace,
    global_interestingness,
    is_orthogonal_clustering,
)
from .predecon import PreDeCon
from .proclus import PROCLUS
from .rescu import RESCU, interestingness_size_dim
from .schism import SCHISM, schism_threshold
from .statpc import StatPC, cluster_significance
from .subclu import SUBCLU

__all__ = [
    "ASCLU",
    "DOC",
    "doc_quality",
    "DUSC",
    "expected_neighbors_uniform",
    "FIRES",
    "MAFIA",
    "adaptive_windows",
    "ORCLUS",
    "P3C",
    "significant_intervals",
    "already_clustered",
    "is_valid_alternative_cluster",
    "CLIQUE",
    "EnclusSubspaceSearch",
    "subspace_entropy",
    "subspace_interest",
    "GridDiscretization",
    "connected_components_of_cells",
    "all_subspaces",
    "apriori_candidates",
    "is_downward_closed",
    "subsets_one_smaller",
    "OSCLU",
    "concept_group",
    "covers_subspace",
    "global_interestingness",
    "is_orthogonal_clustering",
    "PreDeCon",
    "PROCLUS",
    "RESCU",
    "interestingness_size_dim",
    "SCHISM",
    "schism_threshold",
    "StatPC",
    "cluster_significance",
    "SUBCLU",
]

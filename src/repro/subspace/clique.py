"""CLIQUE (Agrawal et al. 1998) — slides 69-71.

Bottom-up grid-based subspace clustering: find dense units in every
1-dimensional subspace, then climb the lattice with apriori candidate
generation (a subspace can hold dense units only if all its
lower-dimensional projections do), and report each connected component
of dense units as a subspace cluster ``(O, S)``.

Every object can appear in many clusters across many subspaces — CLIQUE
is the tutorial's archetype of "all multiple clusterings, no
dissimilarity model" (``M = ALL``), with the redundancy explosion this
implies (experiment F9).
"""

from __future__ import annotations

from .grid import GridDiscretization, connected_components_of_cells
from .lattice import all_subspaces, apriori_candidates
from ..core.base import ParamsMixin
from ..core.subspace import SubspaceCluster, SubspaceClustering
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..utils.validation import check_array, check_in_range

__all__ = ["CLIQUE"]


register(TaxonomyEntry(
    key="clique",
    reference="Agrawal et al., 1998",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="no dissimilarity",
    flexible_definition=False,
    estimator="repro.subspace.clique.CLIQUE",
    notes="outputs ALL dense subspace clusters",
))


class CLIQUE(ParamsMixin):
    """Grid-based bottom-up subspace clustering.

    Parameters
    ----------
    n_intervals : int
        ``xi`` — grid resolution per dimension.
    density_threshold : float in (0, 1)
        ``tau`` — a unit is dense when it holds more than
        ``tau * n_samples`` objects (fixed fraction; compare SCHISM's
        dimensionality-adaptive threshold).
    max_dim : int or None
        Cap on cluster dimensionality (None = no cap).
    min_cluster_size : int
        Discard components with fewer objects.
    prune : bool
        Monotonicity pruning on the subspace lattice. ``False`` visits
        every subspace up to ``max_dim`` (the exponential baseline of
        experiment F7) — results are identical, work is not.
    threshold_fn : callable ``(dimensionality) -> float`` or None
        Optional per-dimensionality density threshold *fraction*
        overriding ``density_threshold`` (SCHISM plugs in here).

    Attributes
    ----------
    clusters_ : SubspaceClustering — all found subspace clusters.
    subspaces_visited_ : int — lattice nodes actually counted.
    dense_subspaces_ : list of tuple — subspaces holding dense units.
    grid_ : GridDiscretization
    """

    def __init__(self, n_intervals=10, density_threshold=0.05, max_dim=None,
                 min_cluster_size=2, prune=True, threshold_fn=None):
        self.n_intervals = n_intervals
        self.density_threshold = density_threshold
        self.max_dim = max_dim
        self.min_cluster_size = min_cluster_size
        self.prune = prune
        self.threshold_fn = threshold_fn
        self.clusters_ = None
        self.subspaces_visited_ = None
        self.dense_subspaces_ = None
        self.grid_ = None

    def _threshold_count(self, dimensionality, n):
        if self.threshold_fn is not None:
            frac = float(self.threshold_fn(dimensionality))
        else:
            frac = float(self.density_threshold)
        return frac * n

    def fit(self, X):
        X = check_array(X)
        if self.threshold_fn is None:
            check_in_range(self.density_threshold, "density_threshold",
                           low=0.0, high=1.0, inclusive_low=False)
        n, d = X.shape
        max_dim = d if self.max_dim is None else min(int(self.max_dim), d)
        grid = GridDiscretization(self.n_intervals).fit(X)
        clusters = []
        dense_subspaces = []
        visited = 0

        def process(subspace):
            nonlocal visited
            visited += 1
            thresh = self._threshold_count(len(subspace), n)
            units = grid.dense_units(subspace, thresh)
            if not units:
                return False
            dense_subspaces.append(subspace)
            for _cells, objs in connected_components_of_cells(units):
                if objs.size >= self.min_cluster_size:
                    clusters.append(SubspaceCluster(
                        objs.tolist(), subspace,
                        quality=objs.size / n,
                    ))
            return True

        if self.prune:
            frontier = []
            for j in range(d):
                if process((j,)):
                    frontier.append((j,))
            size = 1
            while frontier and size < max_dim:
                candidates = apriori_candidates(frontier)
                frontier = [cand for cand in candidates if process(cand)]
                size += 1
        else:
            for subspace in all_subspaces(d, max_dim):
                process(subspace)

        self.clusters_ = SubspaceClustering(clusters, name="CLIQUE")
        self.subspaces_visited_ = visited
        self.dense_subspaces_ = dense_subspaces
        self.grid_ = grid
        return self

    def fit_predict(self, X):
        """Fit and return the :class:`SubspaceClustering` result."""
        return self.fit(X).clusters_

"""STATPC-style statistical cluster selection (Moise & Sander 2008) —
slide 78.

Principle: the result set should *explain* every other clustered region
— a candidate is added only when its object count cannot be explained by
the clusters already selected.

This implementation keeps the paper's two statistical ingredients while
simplifying the candidate generation (candidates come from any base
miner, CLIQUE by default — the tutorial notes the cluster definition
"could be exchanged in a more general processing"):

* **significance**: a candidate ``(O, S)`` is statistically significant
  when observing ``|O|`` objects in its bounding box is unlikely under a
  uniform null — a Binomial(n, volume) tail test at level ``alpha0``;
* **explain relation**: given the current selection, the expected number
  of the candidate's objects already covered follows from micro-cell
  overlap; if the candidate's *unexplained* mass is small, it is
  redundant and skipped.
"""

from __future__ import annotations

import numpy as np
from scipy import stats  # repro: noqa[RL002] - exact binomial tails have no NumPy substrate

from ..core.base import ParamsMixin
from ..core.subspace import SubspaceClustering
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..utils.validation import check_array, check_in_range

__all__ = ["StatPC", "cluster_significance"]


register(TaxonomyEntry(
    key="statpc",
    reference="Moise & Sander, 2008",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="no dissimilarity",
    flexible_definition=False,
    estimator="repro.subspace.statpc.StatPC",
    notes="statistically significant, mutually explaining selection",
))


def cluster_significance(X, cluster):
    """P-value of a subspace cluster under the uniform null.

    The cluster's bounding box in its subspace has relative volume ``v``
    (product over dims of box-width / data-range); under uniformity the
    box holds ``Binomial(n, v)`` objects, and the p-value is the upper
    tail at the observed count. Smaller = more surprising.
    """
    X = check_array(X)
    n = X.shape[0]
    objs = sorted(cluster.objects)
    dims = sorted(cluster.dims)
    vol = 1.0
    for dim in dims:
        col = X[:, dim]
        lo, hi = col.min(), col.max()
        span = hi - lo
        if span <= 0:
            continue
        sub = X[objs, dim]
        width = float(sub.max() - sub.min())
        # A degenerate (zero-width) box still occupies one "point slab";
        # floor at 1/n of the range to keep the null well-defined.
        vol *= max(width / span, 1.0 / n)
    vol = min(vol, 1.0)
    return float(stats.binom.sf(len(objs) - 1, n, vol))


class StatPC(ParamsMixin):
    """Greedy statistically-guided selection of non-redundant clusters.

    Parameters
    ----------
    alpha0 : float
        Significance level for admitting a candidate at all.
    alpha_explain : float
        A candidate is *explained* (skipped) when the fraction of its
        objects not yet covered by selected clusters sharing >= 1
        dimension is below this value.
    base_miner : object or None
        Anything with ``fit_predict(X) -> SubspaceClustering``; default
        CLIQUE with moderate settings.

    Attributes
    ----------
    clusters_ : SubspaceClustering — the selected result ``M``.
    candidates_ : SubspaceClustering — the full candidate set ``ALL``.
    p_values_ : list of float — aligned with ``candidates_``.
    """

    def __init__(self, alpha0=1e-3, alpha_explain=0.25, base_miner=None):
        self.alpha0 = alpha0
        self.alpha_explain = alpha_explain
        self.base_miner = base_miner
        self.clusters_ = None
        self.candidates_ = None
        self.p_values_ = None

    def fit(self, X, candidates=None):
        X = check_array(X)
        check_in_range(self.alpha0, "alpha0", low=0.0, high=1.0,
                       inclusive_low=False)
        check_in_range(self.alpha_explain, "alpha_explain", low=0.0, high=1.0)
        if candidates is None:
            miner = self.base_miner
            if miner is None:
                from .clique import CLIQUE

                miner = CLIQUE(n_intervals=8, density_threshold=0.03)
            candidates = miner.fit_predict(X)
        if not isinstance(candidates, SubspaceClustering):
            candidates = SubspaceClustering(candidates)
        if len(candidates) == 0:
            raise ValidationError("no candidate clusters to select from")
        pvals = [cluster_significance(X, c) for c in candidates]
        order = np.argsort(pvals)
        selected = []
        covered_by_dim = {}
        for idx in order:
            c = candidates[int(idx)]
            if pvals[int(idx)] > self.alpha0:
                break  # sorted: everything after is even less significant
            # Explained? objects already covered by selected clusters that
            # share at least one dimension with the candidate.
            already = set()
            for dim in c.dims:
                already |= covered_by_dim.get(dim, set())
            new_frac = len(c.objects - already) / len(c.objects)
            if selected and new_frac < self.alpha_explain:
                continue
            selected.append(c)
            for dim in c.dims:
                covered_by_dim.setdefault(dim, set()).update(c.objects)
        self.clusters_ = SubspaceClustering(selected, name="StatPC")
        self.candidates_ = candidates
        self.p_values_ = [float(p) for p in pvals]
        return self

    def fit_predict(self, X, candidates=None):
        """Fit and return the selected :class:`SubspaceClustering`."""
        return self.fit(X, candidates=candidates).clusters_

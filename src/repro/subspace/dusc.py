"""DUSC — dimensionality-unbiased subspace clustering (Assent et al.
2007) — slide 77.

Density-based mining with a *dimensionality-unbiased* core condition:
a fixed DBSCAN threshold over-reports in low-dimensional subspaces
(everything is dense) and under-reports in high-dimensional ones.
DUSC normalises each object's neighbourhood count by the **expected**
count under a uniform null in that subspace::

    density_S(o) = |N_eps(o, S)|  /  E_uniform[ |N_eps(., S)| ]

and requires ``density_S(o) >= F`` for a core object — the same factor
``F`` is meaningful at every dimensionality. The expected count is the
product over the subspace's dimensions of the per-dimension probability
mass of an eps-interval (estimated from each attribute's range), times
``n``.
"""

from __future__ import annotations

import numpy as np

from .lattice import apriori_candidates
from ..cluster.dbscan import dbscan_from_neighborhoods
from ..core.base import ParamsMixin
from ..core.subspace import SubspaceCluster, SubspaceClustering
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..utils.linalg import cdist_sq
from ..utils.validation import check_array, check_in_range

__all__ = ["DUSC", "expected_neighbors_uniform"]


register(TaxonomyEntry(
    key="dusc",
    reference="Assent et al., 2007",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="no dissimilarity",
    flexible_definition=False,
    estimator="repro.subspace.dusc.DUSC",
    notes="dimensionality-unbiased density normalisation",
))


def expected_neighbors_uniform(n_samples, eps, ranges):
    """Expected eps-ball occupancy under per-dimension uniformity.

    Approximated with the enclosing hypercube: per dimension the
    probability that an independent uniform sample falls within ``eps``
    is ``min(2 eps / range, 1)``; the joint expectation multiplies.
    """
    p = 1.0
    for span in ranges:
        if span <= 0:
            continue
        p *= min(2.0 * eps / span, 1.0)
    return max(n_samples * p, 1e-12)


class DUSC(ParamsMixin):
    """Dimensionality-unbiased density-based subspace clustering.

    Parameters
    ----------
    eps : float
        Neighbourhood radius (shared across subspaces).
    factor : float
        ``F`` — how many times denser than the uniform expectation a
        core object's neighbourhood must be. Replaces min_pts and is
        comparable across dimensionalities (the paper's point).
    max_dim : int or None
    min_cluster_size : int

    Attributes
    ----------
    clusters_ : SubspaceClustering
    core_thresholds_ : dict dimensionality -> required neighbour count
        in a subspace of that dimensionality (for the full data ranges;
        informational).
    subspaces_visited_ : int
    """

    def __init__(self, eps=0.5, factor=10.0, max_dim=None,
                 min_cluster_size=4):
        self.eps = eps
        self.factor = factor
        self.max_dim = max_dim
        self.min_cluster_size = min_cluster_size
        self.clusters_ = None
        self.core_thresholds_ = None
        self.subspaces_visited_ = None

    def _mine_subspace(self, X, ranges, subspace):
        n = X.shape[0]
        sub = X[:, list(subspace)]
        d2 = cdist_sq(sub, sub)
        eps2 = self.eps * self.eps
        neighborhoods = [np.flatnonzero(row <= eps2) for row in d2]
        expected = expected_neighbors_uniform(
            n, self.eps, [ranges[j] for j in subspace])
        min_pts = max(2, int(np.ceil(self.factor * expected)))
        labels, _ = dbscan_from_neighborhoods(neighborhoods, min_pts)
        out = []
        for cid in np.unique(labels):
            if cid == -1:
                continue
            members = np.flatnonzero(labels == cid)
            if members.size >= self.min_cluster_size:
                out.append(members)
        return out, min_pts

    def fit(self, X):
        X = check_array(X)
        check_in_range(self.eps, "eps", low=0.0, inclusive_low=False)
        check_in_range(self.factor, "factor", low=0.0, inclusive_low=False)
        n, d = X.shape
        max_dim = d if self.max_dim is None else min(int(self.max_dim), d)
        ranges = [float(X[:, j].max() - X[:, j].min()) for j in range(d)]
        clusters = []
        visited = 0
        thresholds = {}
        frontier = []
        for j in range(d):
            visited += 1
            found, min_pts = self._mine_subspace(X, ranges, (j,))
            thresholds.setdefault(1, min_pts)
            if found:
                frontier.append((j,))
                for members in found:
                    clusters.append(SubspaceCluster(
                        members.tolist(), (j,), quality=members.size / n))
        size = 1
        while frontier and size < max_dim:
            next_frontier = []
            for cand in apriori_candidates(frontier):
                visited += 1
                found, min_pts = self._mine_subspace(X, ranges, cand)
                thresholds.setdefault(len(cand), min_pts)
                if found:
                    next_frontier.append(cand)
                    for members in found:
                        clusters.append(SubspaceCluster(
                            members.tolist(), cand,
                            quality=members.size / n))
            frontier = next_frontier
            size += 1
        self.clusters_ = SubspaceClustering(clusters, name="DUSC")
        self.core_thresholds_ = thresholds
        self.subspaces_visited_ = visited
        return self

    def fit_predict(self, X):
        """Fit and return the :class:`SubspaceClustering` result."""
        return self.fit(X).clusters_

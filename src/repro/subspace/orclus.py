"""ORCLUS — arbitrarily ORiented projected CLUSters (Aggarwal & Yu
2000) — slide 66.

Generalises PROCLUS from axis-parallel to arbitrarily *oriented*
per-cluster subspaces: each cluster carries an orthonormal basis ``E_c``
of the ``l`` directions in which its members have the **least** spread
(the smallest-eigenvalue eigenvectors of the cluster covariance), and
points are assigned by distance to the centroid *projected onto that
basis*. The algorithm alternates assignment, basis update, and — as in
the paper — progressively shrinks the retained dimensionality from the
full space down to ``l``.
"""

from __future__ import annotations

import numpy as np

from ..core.base import BaseClusterer
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..cluster.kmeans import kmeans_plus_plus
from ..exceptions import ValidationError
from ..utils.validation import (
    check_array,
    check_n_clusters,
    check_random_state,
)

__all__ = ["ORCLUS"]


register(TaxonomyEntry(
    key="orclus",
    reference="Aggarwal & Yu, 2000",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.ITERATIVE,
    given_knowledge=False,
    n_clusterings="1",
    view_detection="no dissimilarity",
    flexible_definition=False,
    estimator="repro.subspace.orclus.ORCLUS",
    notes="arbitrarily oriented per-cluster subspaces",
))


class ORCLUS(BaseClusterer):
    """Oriented projected clustering.

    Parameters
    ----------
    n_clusters : int — ``k``.
    n_components : int — final per-cluster subspace dimensionality ``l``.
    max_iter : int — assignment/basis rounds per dimensionality stage.
    decay : float in (0, 1) — per-stage dimensionality reduction factor
        (the paper's ``alpha``-style schedule).
    n_init : int — restarts; the lowest projected-energy run wins (the
        initial full-space seeding is noisy when most dimensions are
        irrelevant, so restarts matter).
    random_state : int, Generator or None

    Attributes
    ----------
    labels_ : ndarray — the single partition.
    centroids_ : ndarray (k, d)
    bases_ : list of ndarray (d, l) — per-cluster projection bases
        (the *low-variance* directions used for distance).
    projected_energy_ : float — final mean projected distance (the
        paper's cluster sparsity objective; lower is better).
    """

    def __init__(self, n_clusters=3, n_components=2, max_iter=10,
                 decay=0.7, n_init=5, random_state=None):
        self.n_clusters = n_clusters
        self.n_components = n_components
        self.max_iter = max_iter
        self.decay = decay
        self.n_init = n_init
        self.random_state = random_state
        self.labels_ = None
        self.centroids_ = None
        self.bases_ = None
        self.projected_energy_ = None

    @staticmethod
    def _low_variance_basis(points, q):
        """Orthonormal basis of the q least-variance directions."""
        centered = points - points.mean(axis=0, keepdims=True)
        cov = centered.T @ centered / max(points.shape[0] - 1, 1)
        vals, vecs = np.linalg.eigh(cov)
        return vecs[:, :q]    # eigh sorts ascending

    def fit(self, X):
        X = check_array(X, min_samples=2)
        n, d = X.shape
        k = check_n_clusters(self.n_clusters, n)
        l = int(self.n_components)
        if l < 1 or l > d:
            raise ValidationError("n_components must lie in [1, n_features]")
        if not (0.0 < self.decay < 1.0):
            raise ValidationError("decay must lie in (0, 1)")
        rng = check_random_state(self.random_state)
        best = None
        for _ in range(max(1, int(self.n_init))):
            result = self._run(X, k, l, rng)
            if best is None or result[3] < best[3]:
                best = result
        self.labels_, self.centroids_, self.bases_, self.projected_energy_ = best
        return self

    def _run(self, X, k, l, rng):
        n, d = X.shape
        centroids = kmeans_plus_plus(X, k, rng)
        bases = [np.eye(d) for _ in range(k)]
        labels = np.zeros(n, dtype=np.int64)

        # Dimensionality schedule d -> ... -> l, with l repeated so the
        # final-basis assignments are themselves iterated to a fixed
        # point (otherwise the last basis update never drives an
        # assignment round).
        schedule = [d]
        while schedule[-1] > l:
            schedule.append(max(l, int(np.floor(schedule[-1] * self.decay))))
        schedule.append(l)

        def compute_scores():
            scores = np.empty((n, k))
            for c in range(k):
                proj = (X - centroids[c][None, :]) @ bases[c]
                scores[:, c] = np.sum(proj * proj, axis=1)
            return scores

        for q in schedule:
            for _ in range(int(self.max_iter)):
                # Assignment in each cluster's projected space, then
                # centroid update.
                new_labels = np.argmin(compute_scores(), axis=1)
                for c in range(k):
                    members = new_labels == c
                    if members.any():
                        centroids[c] = X[members].mean(axis=0)
                converged = np.array_equal(new_labels, labels)
                labels = new_labels
                if converged:
                    break
            # Basis update at the current dimensionality.
            for c in range(k):
                members = X[labels == c]
                if members.shape[0] >= 2:
                    bases[c] = self._low_variance_basis(members, q)
                else:
                    bases[c] = np.eye(d)[:, :q]
        scores = compute_scores()
        labels = np.argmin(scores, axis=1)
        energy = float(scores[np.arange(n), labels].mean())
        return labels.astype(np.int64), centroids, bases, energy

"""SCHISM (Sequeira & Zaki 2004) — slides 72-73.

Observation: the expected number of objects in a cell shrinks
exponentially with the subspace dimensionality, so CLIQUE's *fixed*
density threshold either floods low-dimensional subspaces or misses
high-dimensional clusters. SCHISM's dimensionality-adaptive threshold
comes from the Chernoff-Hoeffding bound (slide 73)::

    tau(s) = E[X_s]/n + sqrt( ln(1/tau) / (2 n) ),   E[X_s]/n = (1/xi)^s

i.e. the expected cell mass under the uniform-independence null plus a
confidence slack: a cell holding more than ``tau(s) * n`` objects is
*statistically surprising* at level ``tau``.
"""

from __future__ import annotations

import math

from .clique import CLIQUE
from ..core.base import ParamsMixin
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..utils.validation import check_array, check_in_range

__all__ = ["SCHISM", "SchismThreshold", "schism_threshold"]


register(TaxonomyEntry(
    key="schism",
    reference="Sequeira & Zaki, 2004",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="no dissimilarity",
    flexible_definition=False,
    estimator="repro.subspace.schism.SCHISM",
    notes="Chernoff-Hoeffding dimensionality-adaptive threshold",
))


def schism_threshold(dimensionality, n_samples, n_intervals, tau=0.05):
    """The SCHISM threshold ``tau(s)`` as a *fraction* of the data.

    Parameters
    ----------
    dimensionality : int — subspace size ``s``.
    n_samples : int — database size ``n``.
    n_intervals : int — grid resolution ``xi``.
    tau : float in (0, 1) — significance level of the Chernoff-Hoeffding
        bound (smaller = stricter = higher threshold).

    Returns
    -------
    float — monotonically decreasing in ``s``, approaching the constant
    slack term as ``(1/xi)^s -> 0``.
    """
    if dimensionality < 1:
        raise ValidationError("dimensionality must be >= 1")
    if n_samples < 1:
        raise ValidationError("n_samples must be >= 1")
    if n_intervals < 2:
        raise ValidationError("n_intervals must be >= 2")
    check_in_range(tau, "tau", low=0.0, high=1.0,
                   inclusive_low=False, inclusive_high=False)
    expected = (1.0 / n_intervals) ** dimensionality
    slack = math.sqrt(math.log(1.0 / tau) / (2.0 * n_samples))
    return expected + slack


class SchismThreshold:
    """:func:`schism_threshold` with ``(n_samples, n_intervals, tau)``
    bound — a named callable (not a closure) so a fitted SCHISM, which
    hands it to its inner CLIQUE, stays serialisable and picklable.
    """

    def __init__(self, n_samples, n_intervals, tau):
        self.n_samples = n_samples
        self.n_intervals = n_intervals
        self.tau = tau

    def __call__(self, dimensionality):
        return schism_threshold(dimensionality, self.n_samples,
                                self.n_intervals, tau=self.tau)


class SCHISM(ParamsMixin):
    """CLIQUE-style mining with the SCHISM threshold function.

    Parameters
    ----------
    n_intervals, max_dim, min_cluster_size, prune : as in CLIQUE.
    tau : float — significance level of the threshold function.

    Attributes
    ----------
    clusters_ : SubspaceClustering
    thresholds_ : dict dimensionality -> threshold fraction used.
    subspaces_visited_ : int
    """

    def __init__(self, n_intervals=10, tau=0.05, max_dim=None,
                 min_cluster_size=2, prune=True):
        self.n_intervals = n_intervals
        self.tau = tau
        self.max_dim = max_dim
        self.min_cluster_size = min_cluster_size
        self.prune = prune
        self.clusters_ = None
        self.thresholds_ = None
        self.subspaces_visited_ = None
        self._clique_ = None

    def fit(self, X):
        X = check_array(X)
        n = X.shape[0]
        threshold_fn = SchismThreshold(n, self.n_intervals, self.tau)
        clique = CLIQUE(
            n_intervals=self.n_intervals,
            density_threshold=0.5,        # unused when threshold_fn given
            max_dim=self.max_dim,
            min_cluster_size=self.min_cluster_size,
            prune=self.prune,
            threshold_fn=threshold_fn,
        ).fit(X)
        max_dim = X.shape[1] if self.max_dim is None else int(self.max_dim)
        self.clusters_ = clique.clusters_
        self.clusters_.name = "SCHISM"
        self.thresholds_ = {
            s: threshold_fn(s) for s in range(1, max_dim + 1)
        }
        self.subspaces_visited_ = clique.subspaces_visited_
        self._clique_ = clique
        return self

    def fit_predict(self, X):
        """Fit and return the :class:`SubspaceClustering` result."""
        return self.fit(X).clusters_

"""ENCLUS (Cheng, Fu & Zhang 1999) — slides 88-89.

Subspace *search* decoupled from clustering: score whole subspaces by
the entropy of their grid-cell density distribution.

* low entropy  -> mass concentrated in few cells -> good clustering
  (criterion ``H(S) < omega``);
* high interest ``interest(S) = sum_j H({j}) - H(S)`` -> the dimensions
  are correlated, not just individually skewed (``interest >= epsilon``).

Low entropy is anti-monotone under adding dimensions
(``H(S ∪ {d}) >= H(S)``), so the lattice climb prunes apriori-style.
The selected subspaces are then handed to any full-space clusterer —
:meth:`EnclusSubspaceSearch.cluster_subspaces` does this with k-means.
"""

from __future__ import annotations

from .grid import GridDiscretization
from .lattice import apriori_candidates
from ..core.base import ParamsMixin
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import NotFittedError
from ..metrics.information import entropy_of_distribution
from ..utils.validation import check_array, check_in_range

__all__ = ["EnclusSubspaceSearch", "subspace_entropy", "subspace_interest"]


register(TaxonomyEntry(
    key="enclus",
    reference="Cheng et al., 1999",
    search_space=SearchSpace.SUBSPACES,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="no dissimilarity",
    flexible_definition=True,
    estimator="repro.subspace.enclus.EnclusSubspaceSearch",
    notes="entropy-based subspace selection, clusterer-agnostic",
))


def subspace_entropy(grid, dims):
    """Entropy (nats) of the cell-density distribution in a subspace."""
    density = grid.cell_density(dims)
    return entropy_of_distribution(density)


def subspace_interest(grid, dims, single_entropies=None):
    """``interest(S) = sum_j H({j}) - H(S)`` (total correlation)."""
    dims = tuple(dims)
    if single_entropies is None:
        single_entropies = {
            (j,): subspace_entropy(grid, (j,)) for j in dims
        }
    total = sum(single_entropies[(j,)] for j in dims)
    return total - subspace_entropy(grid, dims)


class EnclusSubspaceSearch(ParamsMixin):
    """Entropy-based search for interesting subspaces.

    Parameters
    ----------
    n_intervals : int — grid resolution.
    omega : float — entropy ceiling ``H(S) < omega`` (nats).
    epsilon : float — interest floor for reported subspaces.
    max_dim : int or None

    Attributes
    ----------
    subspaces_ : list of tuple — selected subspaces, best interest first.
    entropies_ : dict subspace -> H(S) for every visited subspace.
    interests_ : dict subspace -> interest(S) for selected subspaces.
    """

    def __init__(self, n_intervals=8, omega=2.5, epsilon=0.05, max_dim=None):
        self.n_intervals = n_intervals
        self.omega = omega
        self.epsilon = epsilon
        self.max_dim = max_dim
        self.subspaces_ = None
        self.entropies_ = None
        self.interests_ = None
        self.grid_ = None

    def fit(self, X):
        X = check_array(X)
        check_in_range(self.omega, "omega", low=0.0, inclusive_low=False)
        check_in_range(self.epsilon, "epsilon", low=0.0)
        n, d = X.shape
        max_dim = d if self.max_dim is None else min(int(self.max_dim), d)
        grid = GridDiscretization(self.n_intervals).fit(X)
        entropies = {}
        singles = {}
        for j in range(d):
            h = subspace_entropy(grid, (j,))
            entropies[(j,)] = h
            singles[(j,)] = h
        frontier = [s for s in sorted(singles) if entropies[s] < self.omega]
        selected = []
        size = 1
        while frontier and size < max_dim:
            candidates = apriori_candidates(frontier)
            next_frontier = []
            for cand in candidates:
                h = subspace_entropy(grid, cand)
                entropies[cand] = h
                if h < self.omega:
                    next_frontier.append(cand)
            frontier = next_frontier
            size += 1
        interests = {}
        for subspace, h in entropies.items():
            if len(subspace) < 2 or h >= self.omega:
                continue
            total = sum(singles[(j,)] for j in subspace)
            interest = total - h
            if interest >= self.epsilon:
                interests[subspace] = interest
        self.subspaces_ = sorted(interests, key=interests.get, reverse=True)
        self.entropies_ = entropies
        self.interests_ = interests
        self.grid_ = grid
        return self

    def cluster_subspaces(self, X, n_clusters=2, top=None, random_state=None):
        """Cluster the data in each selected subspace with k-means.

        Returns a list of ``(subspace, labels)`` pairs — one clustering
        per view, the "subspace search" route to multiple clusterings
        (slide 88).
        """
        from ..cluster.kmeans import KMeans

        if self.subspaces_ is None:
            raise NotFittedError("call fit first")
        X = check_array(X)
        chosen = self.subspaces_ if top is None else self.subspaces_[:top]
        out = []
        for subspace in chosen:
            km = KMeans(n_clusters=n_clusters, random_state=random_state)
            out.append((subspace, km.fit(X[:, list(subspace)]).labels_))
        return out

"""Disparate (and dependent) prototype clustering via contingency
tables (Hossain et al. 2010) — slide 44.

Two prototype-based clusterings of the same objects are optimised
jointly. Dissimilarity is modelled through their contingency table:
maximal disparity = a *uniform* table (knowing an object's cluster in
one clustering says nothing about the other); the dependent variant
instead drives the table towards a diagonal. Quality is ensured by
representing clusters with prototypes (nearest-prototype assignment,
mean updates), exactly the paper's device for keeping "arbitrary
clusterings" out.

Optimisation alternates k-means-style rounds for each clustering with a
contingency-pressure term added to the assignment distances:

* disparate mode: assigning object i (currently in cluster ``d`` of the
  other clustering) to cluster ``c`` is surcharged by how *overfull*
  cell (c, d) already is relative to the uniform target;
* dependent mode: surcharged by how far the assignment strays from the
  greedily matched diagonal.
"""

from __future__ import annotations

import numpy as np

from ..cluster.kmeans import kmeans_plus_plus
from ..core.base import MultiClusteringEstimator
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..utils.linalg import cdist_sq
from ..utils.validation import (
    check_array,
    check_in_range,
    check_n_clusters,
    check_random_state,
)

__all__ = ["DisparateClustering", "contingency_uniformity"]


register(TaxonomyEntry(
    key="hossain-disparate",
    reference="Hossain et al., 2010",
    search_space=SearchSpace.ORIGINAL,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings="2",
    view_detection="",
    flexible_definition=False,
    estimator="repro.originalspace.disparate.DisparateClustering",
    notes="contingency-table uniformity objective; dependent mode too",
))


def contingency_uniformity(labels_a, labels_b):
    """Uniformity of the contingency table in ``[0, 1]`` (1 = uniform).

    Measured as ``1 - 0.5 * L1(P, U)`` between the joint distribution of
    the two labelings and the product-of-sizes uniform target.
    """
    from ..metrics.contingency import contingency_matrix

    mat = contingency_matrix(labels_a, labels_b).astype(np.float64)
    total = mat.sum()
    if total == 0:
        return 1.0
    joint = mat / total
    target = np.outer(joint.sum(axis=1), joint.sum(axis=0))
    return 1.0 - 0.5 * float(np.abs(joint - target).sum())


class DisparateClustering(MultiClusteringEstimator):
    """Two simultaneous prototype clusterings with a contingency objective.

    Parameters
    ----------
    n_clusters : int — clusters per clustering.
    mode : {"disparate", "dependent"}
        Uniform-table (alternative clusterings) or diagonal-table
        (consensus-like) pressure.
    pressure : float >= 0
        Strength of the contingency surcharge relative to the mean
        squared point-prototype distance.
    max_iter, n_init, random_state : optimisation controls.

    Attributes
    ----------
    labelings_ : [labels_1, labels_2]
    prototypes_ : [ndarray, ndarray]
    uniformity_ : float — contingency uniformity of the result.
    objective_ : float — compactness + pressure-weighted table score.
    """

    def __init__(self, n_clusters=2, mode="disparate", pressure=1.0,
                 max_iter=50, n_init=5, random_state=None):
        self.n_clusters = n_clusters
        self.mode = mode
        self.pressure = pressure
        self.max_iter = max_iter
        self.n_init = n_init
        self.random_state = random_state
        self.labelings_ = None
        self.prototypes_ = None
        self.uniformity_ = None
        self.objective_ = None

    def _table_score(self, a, b):
        u = contingency_uniformity(a, b)
        return u if self.mode == "disparate" else 1.0 - u

    def _run(self, X, k, rng):
        n = X.shape[0]
        protos = [kmeans_plus_plus(X, k, rng) for _ in range(2)]
        labels = [np.argmin(cdist_sq(X, p), axis=1) for p in protos]
        scale = float(np.mean(cdist_sq(X, X[rng.choice(n, size=min(n, 20))])))
        scale = max(scale, 1e-12)
        for _ in range(int(self.max_iter)):
            changed = False
            for t in range(2):
                other = labels[1 - t]
                counts = np.zeros((k, k))
                np.add.at(counts, (labels[t], other), 1)
                if self.mode == "disparate":
                    target = n / (k * k)
                    over = (counts - target) / max(target, 1.0)
                else:
                    # dependent: encourage the greedy diagonal matching
                    over = np.ones((k, k))
                    order = np.argsort(-counts, axis=None)
                    used_r, used_c = set(), set()
                    for flat in order:
                        r, c = divmod(int(flat), k)
                        if r in used_r or c in used_c:
                            continue
                        over[r, c] = 0.0
                        used_r.add(r)
                        used_c.add(c)
                d2 = cdist_sq(X, protos[t])
                surcharge = self.pressure * scale * over[:, other].T
                new = np.argmin(d2 + surcharge, axis=1)
                if not np.array_equal(new, labels[t]):
                    changed = True
                labels[t] = new
                for c in range(k):
                    members = labels[t] == c
                    if members.any():
                        protos[t][c] = X[members].mean(axis=0)
            if not changed:
                break
        compact = sum(
            float(cdist_sq(X, protos[t])[np.arange(n), labels[t]].mean())
            for t in range(2)
        )
        score = self._table_score(labels[0], labels[1])
        objective = -compact / scale + self.pressure * score
        return objective, labels, protos

    def fit(self, X):
        X = check_array(X, min_samples=2)
        k = check_n_clusters(self.n_clusters, X.shape[0])
        if self.mode not in ("disparate", "dependent"):
            raise ValidationError(f"unknown mode {self.mode!r}")
        check_in_range(self.pressure, "pressure", low=0.0)
        rng = check_random_state(self.random_state)
        best = None
        for _ in range(max(1, int(self.n_init))):
            result = self._run(X, k, rng)
            if best is None or result[0] > best[0]:
                best = result
        objective, labels, protos = best
        self.labelings_ = [lab.astype(np.int64) for lab in labels]
        self.prototypes_ = protos
        self.uniformity_ = contingency_uniformity(*self.labelings_)
        self.objective_ = float(objective)
        return self

"""minCEntropy-style alternative clustering (Vinh & Epps 2010) — slide 34.

Vinh & Epps minimise the conditional entropy of the data given the
clustering, which for a Gaussian kernel estimate is equivalent to
maximising the average within-cluster kernel similarity::

    Q(C) = sum_c (1/|c|) * sum_{i,j in c} K(x_i, x_j)

The "plus" variants accept one or *several* given clusterings and
subtract a mutual-information penalty, giving the combined objective::

    O(C) = Q(C)/n - beta * sum_g I(C; C_g)

Optimisation is the paper's incremental single-object reassignment local
search with restarts; cluster kernel sums and contingency tables are
maintained incrementally so one sweep costs O(n * (n + k * k_g)).
"""

from __future__ import annotations

import numpy as np

from ..core.base import AlternativeClusterer
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..observability.telemetry import capture_convergence, record_convergence
from ..observability.tracer import traced_fit
from ..robustness.guard import budget_tick
from ..utils.linalg import rbf_kernel
from ..utils.validation import (
    check_array,
    check_in_range,
    check_n_clusters,
    check_random_state,
)

__all__ = ["MinCEntropy"]


register(TaxonomyEntry(
    key="mincentropy",
    reference="Vinh & Epps, 2010",
    search_space=SearchSpace.ORIGINAL,
    processing=Processing.ITERATIVE,
    given_knowledge=True,
    n_clusterings="2",
    view_detection="",
    flexible_definition=False,
    estimator="repro.originalspace.mincentropy.MinCEntropy",
    notes="kernel conditional-entropy objective; accepts a set of givens",
))


def _mi_from_counts(counts):
    """Mutual information (nats) from a contingency count matrix."""
    total = counts.sum()
    if total <= 0:
        return 0.0
    pij = counts / total
    pi = pij.sum(axis=1, keepdims=True)
    pj = pij.sum(axis=0, keepdims=True)
    nz = pij > 0
    return float(np.sum(pij[nz] * np.log(pij[nz] / (pi @ pj)[nz])))


class _State:
    """Incremental bookkeeping for the local search."""

    def __init__(self, K, labels, k, given_codes, given_sizes):
        self.K = K
        self.n = K.shape[0]
        self.k = k
        self.labels = labels
        # R[i, c] = sum_{j in c} K[i, j]
        self.R = np.stack(
            [K[:, labels == c].sum(axis=1) for c in range(k)], axis=1
        )
        self.W = np.array([
            float(K[np.ix_(labels == c, labels == c)].sum()) for c in range(k)
        ])
        self.sizes = np.array([int(np.sum(labels == c)) for c in range(k)])
        self.given_codes = given_codes          # list of int arrays (0..kg-1)
        self.counts = [
            self._contingency(labels, g, k, kg)
            for g, kg in zip(given_codes, given_sizes)
        ]

    @staticmethod
    def _contingency(labels, g, k, kg):
        counts = np.zeros((k, kg))
        np.add.at(counts, (labels, g), 1)
        return counts

    def quality(self):
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(self.sizes > 0, self.W / np.maximum(self.sizes, 1), 0.0)
        return float(ratio.sum())

    def penalty(self):
        return float(sum(_mi_from_counts(c) for c in self.counts))

    def move_delta_quality(self, i, a, b):
        """Change in Q(C) if object ``i`` moves from cluster a to b."""
        kii = self.K[i, i]
        wa, sa = self.W[a], self.sizes[a]
        wb, sb = self.W[b], self.sizes[b]
        wa2 = wa - 2.0 * self.R[i, a] + kii
        wb2 = wb + 2.0 * self.R[i, b] + kii
        old = (wa / sa if sa else 0.0) + (wb / sb if sb else 0.0)
        new = (wa2 / (sa - 1) if sa > 1 else 0.0) + wb2 / (sb + 1)
        return new - old

    def move_delta_penalty(self, i, a, b):
        """Change in the MI penalty if object ``i`` moves a -> b."""
        delta = 0.0
        for g_idx, counts in enumerate(self.counts):
            g = self.given_codes[g_idx][i]
            before = _mi_from_counts(counts)
            counts[a, g] -= 1
            counts[b, g] += 1
            after = _mi_from_counts(counts)
            counts[a, g] += 1
            counts[b, g] -= 1
            delta += after - before
        return delta

    def apply_move(self, i, a, b):
        kii = self.K[i, i]
        self.W[a] += -2.0 * self.R[i, a] + kii
        self.W[b] += 2.0 * self.R[i, b] + kii
        self.sizes[a] -= 1
        self.sizes[b] += 1
        self.R[:, a] -= self.K[:, i]
        self.R[:, b] += self.K[:, i]
        for g_idx, counts in enumerate(self.counts):
            g = self.given_codes[g_idx][i]
            counts[a, g] -= 1
            counts[b, g] += 1
        self.labels[i] = b


class MinCEntropy(AlternativeClusterer):
    """Kernel conditional-entropy alternative clustering.

    Parameters
    ----------
    n_clusters : int
    beta : float
        Weight of the mutual-information penalty against the given
        clustering(s). ``beta = 0`` is plain kernel clustering.
    gamma : float or None
        RBF kernel bandwidth (median heuristic when ``None``).
    max_sweeps, n_init, random_state : optimisation controls.

    Attributes
    ----------
    labels_ : ndarray
    objective_ : float — final ``O(C)`` (higher is better).
    quality_ : float — normalised kernel quality ``Q(C)/n``.
    penalty_ : float — summed MI against the given clusterings.
    n_iter_ : int — local-search sweeps of the winning restart.
    convergence_trace_ : list of ConvergenceEvent — per-sweep ``O(C)``
        of the winning restart (nondecreasing: only improving moves are
        applied).
    """

    def __init__(self, n_clusters=2, beta=2.0, gamma=None, max_sweeps=30,
                 n_init=3, random_state=None):
        self.n_clusters = n_clusters
        self.beta = beta
        self.gamma = gamma
        self.max_sweeps = max_sweeps
        self.n_init = n_init
        self.random_state = random_state
        self.labels_ = None
        self.objective_ = None
        self.quality_ = None
        self.penalty_ = None
        self.n_iter_ = None
        self.convergence_trace_ = None

    @traced_fit
    def fit(self, X, given):
        X = check_array(X, min_samples=2)
        n = X.shape[0]
        k = check_n_clusters(self.n_clusters, n)
        check_in_range(self.beta, "beta", low=0.0)
        givens = self._given_labels(given)
        given_codes = []
        given_sizes = []
        for g in givens:
            if g.shape[0] != n:
                raise ValidationError("given clustering length mismatch")
            _, codes = np.unique(g, return_inverse=True)
            given_codes.append(codes.astype(np.int64))
            given_sizes.append(int(codes.max()) + 1)
        rng = check_random_state(self.random_state)
        K = rbf_kernel(X, gamma=self.gamma)
        beta = float(self.beta)

        best = None
        best_trace = None
        for _ in range(max(1, int(self.n_init))):
            labels = rng.integers(k, size=n).astype(np.int64)
            state = _State(K, labels, k, given_codes, given_sizes)
            n_sweeps = 0
            with capture_convergence() as capture:
                for n_sweeps in range(1, int(self.max_sweeps) + 1):
                    improved = False
                    for i in rng.permutation(n):
                        a = state.labels[i]
                        if state.sizes[a] <= 1:
                            continue  # keep clusters non-empty
                        best_b, best_gain = a, 0.0
                        for b in range(k):
                            if b == a:
                                continue
                            gain = (
                                state.move_delta_quality(i, a, b) / n
                                - beta * state.move_delta_penalty(i, a, b)
                            )
                            if gain > best_gain + 1e-12:
                                best_gain, best_b = gain, b
                        if best_b != a:
                            state.apply_move(i, a, best_b)
                            improved = True
                    budget_tick(objective=state.quality() / n
                                - beta * state.penalty())
                    if not improved:
                        break
            obj = state.quality() / n - beta * state.penalty()
            if best is None or obj > best[0]:
                best = (obj, state.labels.copy(), state.quality() / n,
                        state.penalty(), n_sweeps)
                best_trace = capture.events
        obj, labels, quality, penalty, n_sweeps = best
        self.labels_ = labels.astype(np.int64)
        self.objective_ = float(obj)
        self.quality_ = float(quality)
        self.penalty_ = float(penalty)
        self.n_iter_ = n_sweeps
        record_convergence(self, best_trace)
        return self

"""Density-profile alternative clustering (Bae, Bailey & Dong 2010) —
slide 34.

The ADCO measure compares clusterings by their per-attribute density
profiles (histograms); a good alternative should realise a *different*
density profile than the given clustering, not merely different labels.
This clusterer maximises

    O(C) = Q(C) - lam * ADCO(C, C_given)

where ``Q`` is a prototype compactness quality and ``ADCO`` the
profile similarity of :mod:`repro.metrics.clusterings`, by k-means-style
alternation with a profile-aware reassignment pass.
"""

from __future__ import annotations

import numpy as np

from ..cluster.kmeans import kmeans_plus_plus
from ..core.base import AlternativeClusterer
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..metrics.clusterings import adco_similarity
from ..utils.linalg import cdist_sq
from ..utils.validation import (
    check_array,
    check_in_range,
    check_n_clusters,
    check_random_state,
)

__all__ = ["ADCOAlternative"]


register(TaxonomyEntry(
    key="adco-alternative",
    reference="Bae et al., 2010",
    search_space=SearchSpace.ORIGINAL,
    processing=Processing.ITERATIVE,
    given_knowledge=True,
    n_clusterings="2",
    view_detection="",
    flexible_definition=False,
    estimator="repro.originalspace.adco_alt.ADCOAlternative",
    notes="alternative realises a different density profile",
))


class ADCOAlternative(AlternativeClusterer):
    """Alternative clustering by density-profile dissimilarity.

    Parameters
    ----------
    n_clusters : int
    lam : float >= 0
        Weight of the ADCO-similarity penalty against the given
        clustering (0 = plain k-means).
    n_bins : int
        Histogram resolution of the density profiles.
    max_iter, n_init, random_state : optimisation controls.

    Attributes
    ----------
    labels_ : ndarray
    adco_to_given_ : float — final profile similarity (lower = more
        alternative).
    objective_ : float
    """

    def __init__(self, n_clusters=2, lam=2.0, n_bins=5, max_iter=30,
                 n_init=5, random_state=None):
        self.n_clusters = n_clusters
        self.lam = lam
        self.n_bins = n_bins
        self.max_iter = max_iter
        self.n_init = n_init
        self.random_state = random_state
        self.labels_ = None
        self.adco_to_given_ = None
        self.objective_ = None

    def _objective(self, X, labels, given, scale):
        n = X.shape[0]
        q = 0.0
        for c in np.unique(labels):
            pts = X[labels == c]
            q -= float(np.sum((pts - pts.mean(axis=0)) ** 2))
        q /= (n * scale)
        sim = adco_similarity(X, labels, given, n_bins=self.n_bins)
        return q - self.lam * sim, sim

    def fit(self, X, given):
        X = check_array(X, min_samples=2)
        n = X.shape[0]
        k = check_n_clusters(self.n_clusters, n)
        check_in_range(self.lam, "lam", low=0.0)
        given_list = self._given_labels(given)
        if len(given_list) != 1:
            raise ValidationError("expects exactly one given clustering")
        given_labels = given_list[0]
        if given_labels.shape[0] != n:
            raise ValidationError("given clustering length mismatch")
        rng = check_random_state(self.random_state)
        scale = max(float(np.var(X) * X.shape[1]), 1e-12)
        best = None
        for _ in range(max(1, int(self.n_init))):
            protos = kmeans_plus_plus(X, k, rng)
            labels = np.argmin(cdist_sq(X, protos), axis=1)
            obj, sim = self._objective(X, labels, given_labels, scale)
            for _sweep in range(int(self.max_iter)):
                improved = False
                # prototype update
                for c in range(k):
                    members = labels == c
                    if members.any():
                        protos[c] = X[members].mean(axis=0)
                # profile-aware reassignment: accept single-object moves
                # that improve the combined objective
                order = rng.permutation(n)
                d2 = cdist_sq(X, protos)
                for i in order:
                    current = labels[i]
                    if np.sum(labels == current) <= 1:
                        continue
                    candidate = int(np.argmin(d2[i]))
                    trial_targets = {candidate} | set(range(k))
                    for target in trial_targets:
                        if target == current:
                            continue
                        labels[i] = target
                        cand_obj, cand_sim = self._objective(
                            X, labels, given_labels, scale)
                        if cand_obj > obj + 1e-12:
                            obj, sim = cand_obj, cand_sim
                            improved = True
                            current = target
                            break
                        labels[i] = current
                if not improved:
                    break
            if best is None or obj > best[0]:
                best = (obj, labels.copy(), sim)
        obj, labels, sim = best
        self.labels_ = labels.astype(np.int64)
        self.objective_ = float(obj)
        self.adco_to_given_ = float(sim)
        return self

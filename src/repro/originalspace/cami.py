"""CAMI (Dang & Bailey 2010a) — slide 43.

Two Gaussian mixture models are fitted *simultaneously* by EM, with the
combined objective::

    maximize  L(Theta_1, DB) + L(Theta_2, DB)  -  mu * I(Theta_1, Theta_2)

The mutual-information term between the two mixtures is approximated by
the pairwise Gaussian overlap of components (the closed-form Gaussian
product integral), which is differentiable in the means; the M-step
therefore performs the standard EM mean update followed by a gradient
repulsion step that pushes components of one mixture away from nearby
components of the other.
"""

from __future__ import annotations

import numpy as np

from ..cluster.gmm import e_step, init_params_kmeanspp, m_step
from ..core.base import MultiClusteringEstimator
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..observability.telemetry import capture_convergence, record_convergence
from ..observability.tracer import traced_fit
from ..robustness.guard import budget_tick
from ..utils.validation import (
    check_array,
    check_in_range,
    check_n_clusters,
    check_random_state,
)

__all__ = ["CAMI"]


register(TaxonomyEntry(
    key="cami",
    reference="Dang & Bailey, 2010a",
    search_space=SearchSpace.ORIGINAL,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="",
    flexible_definition=False,
    estimator="repro.originalspace.cami.CAMI",
    notes="dual GMMs, mutual-information penalty",
))


def _overlap_terms(weights_a, means_a, covs_a, weights_b, means_b, covs_b):
    """Pairwise Gaussian overlap ``w_i w_j N(mu_i; mu_j, (s_i + s_j) I)``
    for spherical components; returns the matrix of terms and the summed
    penalty. Used as a tractable surrogate for I(Theta_1, Theta_2)."""
    ka, kb = means_a.shape[0], means_b.shape[0]
    d = means_a.shape[1]
    terms = np.zeros((ka, kb))
    for i in range(ka):
        for j in range(kb):
            var = float(covs_a[i] + covs_b[j])
            diff = means_a[i] - means_b[j]
            quad = float(diff @ diff) / var
            log_term = (
                np.log(max(weights_a[i] * weights_b[j], 1e-300))
                - 0.5 * (quad + d * np.log(2.0 * np.pi * var))
            )
            terms[i, j] = np.exp(log_term)
    return terms, float(terms.sum())


class CAMI(MultiClusteringEstimator):
    """Simultaneous dual-GMM alternative clustering.

    Parameters
    ----------
    n_clusters : int
        Components per mixture (both mixtures share ``k``).
    mu : float
        Weight of the decorrelation penalty; 0 reduces to two independent
        EM runs (which then typically find the *same* solution).
    step : float
        Gradient-step size of the mean repulsion.
    n_init : int
        Random restarts; the run with the best combined objective wins
        (needed to escape symmetric initialisations where both mixtures
        lock onto the same structure).
    max_iter, tol, random_state : usual meanings.

    Attributes
    ----------
    labelings_ : [labels_1, labels_2]
    mixtures_ : list of dicts with ``weights``, ``means``, ``covariances``.
    log_likelihoods_ : [ll_1, ll_2]
    penalty_ : float — final overlap penalty value.
    objective_ : float — ll_1 + ll_2 − mu * penalty.
    convergence_trace_ : list of ConvergenceEvent
        Per-iteration combined objective of the winning restart.
        Non-monotone by design: the gradient repulsion step can
        overshoot, trading likelihood against the overlap penalty.
    """

    def __init__(self, n_clusters=2, mu=1.0, step=0.5, max_iter=100,
                 tol=1e-5, n_init=5, random_state=None):
        self.n_clusters = n_clusters
        self.mu = mu
        self.step = step
        self.max_iter = max_iter
        self.tol = tol
        self.n_init = n_init
        self.random_state = random_state
        self.labelings_ = None
        self.mixtures_ = None
        self.log_likelihoods_ = None
        self.penalty_ = None
        self.objective_ = None
        self.n_iter_ = None
        self.convergence_trace_ = None

    @traced_fit
    def fit(self, X):
        X = check_array(X, min_samples=2)
        k = check_n_clusters(self.n_clusters, X.shape[0])
        check_in_range(self.mu, "mu", low=0.0)
        rng = check_random_state(self.random_state)
        best = None
        best_trace = None
        for _ in range(max(1, int(self.n_init))):
            with capture_convergence() as capture:
                result = self._run(X, k, rng)
            if best is None or result["objective"] > best["objective"]:
                best = result
                best_trace = capture.events
        record_convergence(self, best_trace)
        self.labelings_ = best["labelings"]
        self.mixtures_ = best["mixtures"]
        self.log_likelihoods_ = best["log_likelihoods"]
        self.penalty_ = best["penalty"]
        self.objective_ = best["objective"]
        self.n_iter_ = best["n_iter"]
        return self

    def _run(self, X, k, rng):
        cov_type = "spherical"
        params = []
        for _ in range(2):
            w, m, c = init_params_kmeanspp(X, k, rng, cov_type)
            params.append([w, m, c])
        # Nudge the second mixture so symmetric initialisations split.
        params[1][1] = params[1][1] + 0.1 * rng.standard_normal(params[1][1].shape)
        prev_obj = -np.inf
        n_iter = 0
        resps = [None, None]
        lls = [0.0, 0.0]
        for n_iter in range(1, int(self.max_iter) + 1):
            for t in range(2):
                w, m, c = params[t]
                resps[t], lls[t] = e_step(X, w, m, c, cov_type)
                w, m, c = m_step(X, resps[t], cov_type)
                params[t] = [w, m, c]
            # Mean repulsion: gradient of the overlap penalty w.r.t. means.
            if self.mu > 0:
                w1, m1, c1 = params[0]
                w2, m2, c2 = params[1]
                terms, _ = _overlap_terms(w1, m1, c1, w2, m2, c2)
                grad1 = np.zeros_like(m1)
                grad2 = np.zeros_like(m2)
                for i in range(k):
                    for j in range(k):
                        var = float(c1[i] + c2[j])
                        diff = m1[i] - m2[j]
                        g = terms[i, j] * diff / var
                        grad1[i] += g        # d(-penalty)/d m1_i direction
                        grad2[j] -= g
                params[0][1] = m1 + self.mu * self.step * grad1
                params[1][1] = m2 + self.mu * self.step * grad2
            _, penalty = _overlap_terms(
                params[0][0], params[0][1], params[0][2],
                params[1][0], params[1][1], params[1][2],
            )
            # The overlap integral is O(1) while log-likelihoods scale
            # with n; scale the penalty by n so mu trades them off on a
            # per-object basis (matching CAMI's formulation).
            obj = lls[0] + lls[1] - self.mu * X.shape[0] * penalty
            budget_tick(objective=obj)
            if abs(obj - prev_obj) <= self.tol * max(abs(prev_obj), 1.0):
                prev_obj = obj
                break
            prev_obj = obj
        final = []
        for t in range(2):
            w, m, c = params[t]
            resp, ll = e_step(X, w, m, c, cov_type)
            final.append(np.argmax(resp, axis=1).astype(np.int64))
            lls[t] = ll
        _, penalty = _overlap_terms(
            params[0][0], params[0][1], params[0][2],
            params[1][0], params[1][1], params[1][2],
        )
        return {
            "labelings": final,
            "mixtures": [
                {"weights": p[0], "means": p[1], "covariances": p[2]}
                for p in params
            ],
            "log_likelihoods": [float(v) for v in lls],
            "penalty": float(X.shape[0] * penalty),
            "objective": float(lls[0] + lls[1] - self.mu * X.shape[0] * penalty),
            "n_iter": n_iter,
        }

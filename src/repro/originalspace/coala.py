"""COALA (Bae & Bailey 2006) — slides 31-33.

Given a clustering, every within-cluster pair becomes a cannot-link
constraint. Average-link agglomeration then proceeds with two candidate
merges at each step:

* the **quality merge** — globally closest pair of groups, constraints
  ignored (distance ``dqual``);
* the **dissimilarity merge** — closest pair among pairs whose union
  violates no constraint (distance ``ddiss``).

The quality merge is taken when ``dqual < w * ddiss``, otherwise the
dissimilarity merge; small ``w`` prefers dissimilar alternatives, large
``w`` prefers quality (slide 33).
"""

from __future__ import annotations

import numpy as np

from ..cluster.hierarchical import LinkageMatrix
from ..core.base import AlternativeClusterer
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..observability.telemetry import capture_convergence, record_convergence
from ..observability.tracer import traced_fit
from ..robustness.guard import budget_tick
from ..utils.linalg import pairwise_distances
from ..utils.validation import check_array, check_in_range, check_n_clusters

__all__ = ["COALA"]


register(TaxonomyEntry(
    key="coala",
    reference="Bae & Bailey, 2006",
    search_space=SearchSpace.ORIGINAL,
    processing=Processing.ITERATIVE,
    given_knowledge=True,
    n_clusterings="2",
    view_detection="",
    flexible_definition=False,
    estimator="repro.originalspace.coala.COALA",
    notes="cannot-link constraints from the given clustering",
))


class COALA(AlternativeClusterer):
    """Constrained agglomerative alternative clustering.

    Parameters
    ----------
    n_clusters : int
        Number of clusters in the alternative solution.
    w : float in (0, inf)
        Quality-vs-dissimilarity trade-off: the quality merge is chosen
        when ``dqual < w * ddiss``. ``w -> 0`` forces dissimilarity
        merges whenever one exists; ``w -> inf`` reduces to plain
        average-link clustering.

    Attributes
    ----------
    labels_ : ndarray — the alternative clustering.
    n_quality_merges_, n_dissimilarity_merges_ : int
        How often each merge type fired (reported in experiment F2).
    n_iter_ : int — merge steps performed.
    convergence_trace_ : list of ConvergenceEvent
        Per-merge chosen linkage distance. Non-monotone by design:
        alternating between quality and dissimilarity merges mixes two
        distance scales.
    """

    def __init__(self, n_clusters=2, w=1.0):
        self.n_clusters = n_clusters
        self.w = w
        self.labels_ = None
        self.n_quality_merges_ = None
        self.n_dissimilarity_merges_ = None
        self.n_iter_ = None
        self.convergence_trace_ = None

    @traced_fit
    def fit(self, X, given):
        X = check_array(X, min_samples=2)
        n = X.shape[0]
        k = check_n_clusters(self.n_clusters, n)
        check_in_range(self.w, "w", low=0.0, inclusive_low=False)
        given_list = self._given_labels(given)
        if len(given_list) != 1:
            raise ValidationError("COALA accepts exactly one given clustering")
        given_labels = given_list[0]
        if given_labels.shape[0] != n:
            raise ValidationError("given clustering length mismatch")

        lm = LinkageMatrix(pairwise_distances(X), linkage="average")
        # Cannot-link: objects sharing a (non-noise) given cluster. A pair
        # of groups is "Dissimilar" (merge allowed) iff the sets of given
        # labels they touch are disjoint — maintained incrementally as a
        # boolean conflict matrix so each step's pair search stays
        # vectorised.
        same_given = (given_labels[:, None] == given_labels[None, :])
        noise = given_labels == -1
        same_given[noise, :] = False
        same_given[:, noise] = False
        np.fill_diagonal(same_given, False)
        conflict = same_given.copy()

        q_merges = d_merges = 0
        with capture_convergence() as capture:
            while len(lm.active) > k:
                quality = lm.closest_pair()
                if quality is None:
                    break
                dissim = lm.closest_pair(blocked=conflict)
                if dissim is None:
                    a, b, dist = quality
                    q_merges += 1
                else:
                    dq, dd = quality[2], dissim[2]
                    if dq < self.w * dd:
                        a, b, dist = quality
                        q_merges += 1
                    else:
                        a, b, dist = dissim
                        d_merges += 1
                budget_tick(objective=float(dist))
                survivor = lm.merge(a, b)
                other = b if survivor == a else a
                merged = conflict[survivor] | conflict[other]
                conflict[survivor, :] = merged
                conflict[:, survivor] = merged
        self.labels_ = lm.current_labels(n)
        self.n_quality_merges_ = q_merges
        self.n_dissimilarity_merges_ = d_merges
        self.n_iter_ = q_merges + d_merges
        record_convergence(self, capture.events)
        return self

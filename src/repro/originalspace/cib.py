"""Conditional information bottleneck (Gondek & Hofmann 2003/04) — s35-36.

Works on an empirical joint distribution ``p(x, y)`` (objects x
features, non-negative, normalised). Given background clustering ``D``,
a hard clustering ``C`` of the objects is sought that minimises::

    F(C) = I(X; C) - beta * I(Y; C | D)

i.e. compress the objects while preserving feature information *beyond*
what the given clustering already explains. Optimisation is sequential:
objects are greedily reassigned to the cluster minimising ``F`` until a
fixed point (with random restarts).
"""

from __future__ import annotations

import numpy as np

from ..core.base import AlternativeClusterer
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..utils.validation import (
    check_array,
    check_in_range,
    check_n_clusters,
    check_random_state,
)

__all__ = ["ConditionalInformationBottleneck"]


register(TaxonomyEntry(
    key="cib",
    reference="Gondek & Hofmann, 2003/2004",
    search_space=SearchSpace.ORIGINAL,
    processing=Processing.ITERATIVE,
    given_knowledge=True,
    n_clusterings="2",
    view_detection="",
    flexible_definition=False,
    estimator="repro.originalspace.cib.ConditionalInformationBottleneck",
    notes="information bottleneck conditioned on given clustering",
))


def _entropy(p):
    p = p[p > 0]
    return float(-np.sum(p * np.log(p)))


class ConditionalInformationBottleneck(AlternativeClusterer):
    """CIB alternative clustering on a non-negative data matrix.

    Parameters
    ----------
    n_clusters : int
        Number of clusters in ``C``.
    beta : float
        Preservation weight; larger beta keeps more conditional feature
        information (stronger, more structured alternatives).
    max_sweeps : int
        Full reassignment passes per restart.
    n_init : int
        Restarts; best objective wins. The first restart is seeded from
        k-means on the (row-normalised) data — a far better basin for
        the sequential-IB local search than a uniform random labeling —
        the rest are random.
    random_state : int, Generator or None

    Attributes
    ----------
    labels_ : ndarray — the alternative clustering ``C``.
    objective_ : float — final ``F(C)`` (lower is better).
    mutual_information_x_, conditional_information_ : floats — the two
        terms of the objective at the solution.
    """

    def __init__(self, n_clusters=2, beta=5.0, max_sweeps=30, n_init=3,
                 random_state=None):
        self.n_clusters = n_clusters
        self.beta = beta
        self.max_sweeps = max_sweeps
        self.n_init = n_init
        self.random_state = random_state
        self.labels_ = None
        self.objective_ = None
        self.mutual_information_x_ = None
        self.conditional_information_ = None

    @staticmethod
    def _joint(X):
        total = X.sum()
        if total <= 0:
            raise ValidationError("CIB needs a non-negative matrix with mass")
        return X / total

    def _terms(self, pxy, px, labels, given, k):
        """Compute I(X;C) and I(Y;C|D) for a hard labeling."""
        # p(c): mass of objects per cluster.
        pc = np.array([px[labels == c].sum() for c in range(k)])
        # For hard deterministic assignments, I(X;C) = H(C).
        i_xc = _entropy(pc[pc > 0])
        # I(Y;C|D) = sum_d p(d) * I(Y;C | D=d)
        i_ycd = 0.0
        for dval in np.unique(given):
            rows = given == dval
            pd = px[rows].sum()
            if pd <= 0:
                continue
            sub = pxy[rows] / pd           # p(y, x | d) rows
            sub_labels = labels[rows]
            pyc = np.zeros((k, pxy.shape[1]))
            for c in range(k):
                sel = sub_labels == c
                if sel.any():
                    pyc[c] = sub[sel].sum(axis=0)
            pc_d = pyc.sum(axis=1)
            py_d = pyc.sum(axis=0)
            nz = pyc > 0
            denom = np.outer(pc_d, py_d)
            i_d = float(np.sum(pyc[nz] * np.log(pyc[nz] / denom[nz])))
            i_ycd += pd * i_d
        return i_xc, i_ycd

    def fit(self, X, given):
        X = check_array(X, min_samples=2)
        if (X < 0).any():
            raise ValidationError(
                "CIB requires non-negative data (counts/intensities); "
                "shift or exponentiate your features first"
            )
        n = X.shape[0]
        k = check_n_clusters(self.n_clusters, n)
        check_in_range(self.beta, "beta", low=0.0)
        given_list = self._given_labels(given)
        if len(given_list) != 1:
            raise ValidationError("CIB accepts exactly one given clustering")
        given_labels = given_list[0]
        if given_labels.shape[0] != n:
            raise ValidationError("given clustering length mismatch")
        rng = check_random_state(self.random_state)
        pxy = self._joint(X)
        px = pxy.sum(axis=1)

        def objective(labels):
            i_xc, i_ycd = self._terms(pxy, px, labels, given_labels, k)
            return i_xc - self.beta * i_ycd, i_xc, i_ycd

        def kmeans_seed():
            from ..cluster.kmeans import KMeans

            rows = pxy / pxy.sum(axis=1, keepdims=True)
            km = KMeans(n_clusters=k, n_init=3,
                        random_state=rng.integers(2**31 - 1))
            return km.fit(rows).labels_.copy()

        best = None
        for restart in range(max(1, int(self.n_init))):
            if restart == 0:
                labels = kmeans_seed()
            else:
                labels = rng.integers(k, size=n)
            obj, _, _ = objective(labels)
            for _sweep in range(int(self.max_sweeps)):
                improved = False
                for i in rng.permutation(n):
                    current = labels[i]
                    best_c, best_obj = current, obj
                    for c in range(k):
                        if c == current:
                            continue
                        labels[i] = c
                        cand, _, _ = objective(labels)
                        if cand < best_obj - 1e-12:
                            best_obj, best_c = cand, c
                    labels[i] = best_c
                    if best_c != current:
                        obj = best_obj
                        improved = True
                if not improved:
                    break
            final_obj, i_xc, i_ycd = objective(labels)
            if best is None or final_obj < best[0]:
                best = (final_obj, labels.copy(), i_xc, i_ycd)
        self.objective_, labels, self.mutual_information_x_, \
            self.conditional_information_ = best
        self.labels_ = labels.astype(np.int64)
        return self

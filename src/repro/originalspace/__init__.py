"""Paradigm 1 — multiple clustering solutions in the original data space
(tutorial section 2)."""

from .adco_alt import ADCOAlternative
from .cami import CAMI
from .cib import ConditionalInformationBottleneck
from .disparate import DisparateClustering, contingency_uniformity
from .coala import COALA
from .condens import ConditionalEnsembles
from .deckmeans import DecorrelatedKMeans
from .meta import MetaClustering
from .mincentropy import MinCEntropy

__all__ = [
    "ADCOAlternative",
    "CAMI",
    "DisparateClustering",
    "contingency_uniformity",
    "ConditionalInformationBottleneck",
    "COALA",
    "ConditionalEnsembles",
    "DecorrelatedKMeans",
    "MetaClustering",
    "MinCEntropy",
]

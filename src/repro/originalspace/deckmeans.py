"""Decorrelated k-means (Jain, Meka & Dhillon 2008) — slides 40-41.

Simultaneously learns ``T`` clusterings. Each clustering ``t`` is defined
by representative vectors; objects are assigned to the nearest
representative. The objective couples compactness with pairwise
decorrelation of representatives against the *means* of the other
clusterings::

    G = sum_t sum_i sum_{x in C_i^t} |x - r_i^t|^2
        + lam * sum_{t != t'} sum_{i,j} ( (mu_j^{t'})^T r_i^t )^2

Minimising over ``r_i^t`` with assignments fixed gives the regularised
normal equations::

    ( |C_i^t| I + lam * sum_{t' != t} M^{t'} ) r_i^t = |C_i^t| mu_i^t

with ``M^{t'} = sum_j mu_j^{t'} (mu_j^{t'})^T`` — representatives are
pulled towards their cluster mean but pushed to be orthogonal to the
other clusterings' mean directions.
"""

from __future__ import annotations

import numpy as np

from ..cluster.kmeans import kmeans_plus_plus
from ..core.base import MultiClusteringEstimator
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..observability.telemetry import capture_convergence, record_convergence
from ..observability.tracer import traced_fit
from ..robustness.guard import budget_tick
from ..utils.linalg import cdist_sq
from ..utils.validation import (
    check_array,
    check_in_range,
    check_n_clusters,
    check_random_state,
)

__all__ = ["DecorrelatedKMeans"]


register(TaxonomyEntry(
    key="dec-kmeans",
    reference="Jain et al., 2008",
    search_space=SearchSpace.ORIGINAL,
    processing=Processing.SIMULTANEOUS,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="",
    flexible_definition=False,
    estimator="repro.originalspace.deckmeans.DecorrelatedKMeans",
    notes="representatives decorrelated across clusterings",
))


class DecorrelatedKMeans(MultiClusteringEstimator):
    """Simultaneous discovery of ``T`` decorrelated k-means clusterings.

    Parameters
    ----------
    n_clusters : int or sequence of int
        Cluster count per clustering (a scalar is broadcast).
    n_clusterings : int
        ``T >= 2`` solutions to extract simultaneously.
    lam : float
        Decorrelation weight ``lambda``; 0 decouples the clusterings.
    max_iter : int
    tol : float
        Relative objective-improvement stopping threshold.
    n_init : int
        Random restarts; the run with the lowest combined objective wins.
        Restarts matter here: a perfectly symmetric initialisation (both
        clusterings seeded on the same split) is a fixed point of the
        alternating updates, so escaping to the decorrelated optimum
        relies on initialisation diversity.
    random_state : int, Generator or None

    Attributes
    ----------
    labelings_ : list of ndarray — one labeling per clustering.
    representatives_ : list of ndarray (k_t, d) — the vectors r^t.
    means_ : list of ndarray (k_t, d) — cluster means mu^t.
    objective_ : float — final value of G.
    n_iter_ : int
    convergence_trace_ : list of ConvergenceEvent
        Per-iteration G of the winning restart. Non-monotone by design:
        the nearest-representative assignment step does not minimise the
        coupled decorrelation penalty, so G can rise between rounds.
    """

    def __init__(self, n_clusters=2, n_clusterings=2, lam=1.0, max_iter=100,
                 tol=1e-6, n_init=8, random_state=None):
        self.n_clusters = n_clusters
        self.n_clusterings = n_clusterings
        self.lam = lam
        self.max_iter = max_iter
        self.tol = tol
        self.n_init = n_init
        self.random_state = random_state
        self.labelings_ = None
        self.representatives_ = None
        self.means_ = None
        self.objective_ = None
        self.n_iter_ = None
        self.convergence_trace_ = None

    def _ks(self, n):
        if np.isscalar(self.n_clusters):
            ks = [int(self.n_clusters)] * int(self.n_clusterings)
        else:
            ks = [int(k) for k in self.n_clusters]
            if len(ks) != int(self.n_clusterings):
                raise ValidationError(
                    "len(n_clusters) must equal n_clusterings"
                )
        return [check_n_clusters(k, n) for k in ks]

    def _objective(self, X, reps, labelings, means):
        total = 0.0
        for t, (r, lab) in enumerate(zip(reps, labelings)):
            diff = X - r[lab]
            total += float(np.sum(diff * diff))
        lam = float(self.lam)
        for t in range(len(reps)):
            for t2 in range(len(reps)):
                if t == t2:
                    continue
                total += lam * float(np.sum((means[t2] @ reps[t].T) ** 2))
        return total

    def _run(self, X, ks, rng):
        n, d = X.shape
        T = int(self.n_clusterings)
        reps = [kmeans_plus_plus(X, k, rng) for k in ks]
        labelings = [np.argmin(cdist_sq(X, r), axis=1) for r in reps]
        means = [r.copy() for r in reps]
        prev = np.inf
        n_iter = 0
        for n_iter in range(1, int(self.max_iter) + 1):
            # Assignment step: nearest representative.
            labelings = [np.argmin(cdist_sq(X, r), axis=1) for r in reps]
            # Means of the induced clusters.
            for t in range(T):
                for i in range(ks[t]):
                    members = labelings[t] == i
                    if members.any():
                        means[t][i] = X[members].mean(axis=0)
            # Representative update from the regularised normal equations.
            for t in range(T):
                M = np.zeros((d, d))
                for t2 in range(T):
                    if t2 != t:
                        M += means[t2].T @ means[t2]
                for i in range(ks[t]):
                    size = int(np.sum(labelings[t] == i))
                    if size == 0:
                        continue
                    A = size * np.eye(d) + float(self.lam) * M
                    reps[t][i] = np.linalg.solve(A, size * means[t][i])
            obj = self._objective(X, reps, labelings, means)
            budget_tick(objective=obj)
            if prev - obj <= self.tol * max(abs(prev), 1.0):
                prev = obj
                break
            prev = obj
        return prev, labelings, reps, means, n_iter

    @traced_fit
    def fit(self, X):
        X = check_array(X, min_samples=2)
        n, _ = X.shape
        T = int(self.n_clusterings)
        if T < 2:
            raise ValidationError("n_clusterings must be >= 2")
        check_in_range(self.lam, "lam", low=0.0)
        ks = self._ks(n)
        rng = check_random_state(self.random_state)
        best = None
        best_trace = None
        for _ in range(max(1, int(self.n_init))):
            with capture_convergence() as capture:
                result = self._run(X, ks, rng)
            if best is None or result[0] < best[0]:
                best = result
                best_trace = capture.events
        obj, labelings, reps, means, n_iter = best
        record_convergence(self, best_trace)
        self.labelings_ = [lab.astype(np.int64) for lab in labelings]
        self.representatives_ = reps
        self.means_ = means
        self.objective_ = float(obj)
        self.n_iter_ = n_iter
        return self

"""Non-redundant clustering with conditional ensembles (Gondek &
Hofmann 2005) — slide 34.

CondEns turns any base clusterer into an alternative clusterer using
ensembles: cluster *within* each class of the given clustering (so each
local clustering is conditionally independent of the given structure by
construction), then merge the local clusterings into one global
alternative. Intuition: structure that recurs inside every given class
is orthogonal to the class boundary.

The combination step aligns the per-class sub-clusters across classes
(Hungarian matching on centroid distances against a reference class) —
sub-clusters occupying the same region of space in different classes
receive the same global label, exactly the "same role, different class"
semantics the ensemble consensus of the paper provides.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import (  # repro: noqa[RL002] - Hungarian matching has no NumPy substrate
    linear_sum_assignment,
)

from ..cluster.kmeans import KMeans
from ..core.base import AlternativeClusterer
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..utils.linalg import cdist_sq
from ..utils.validation import check_array, check_n_clusters, check_random_state

__all__ = ["ConditionalEnsembles"]


register(TaxonomyEntry(
    key="condens",
    reference="Gondek & Hofmann, 2005",
    search_space=SearchSpace.ORIGINAL,
    processing=Processing.ITERATIVE,
    given_knowledge=True,
    n_clusterings="2",
    view_detection="",
    flexible_definition=True,
    estimator="repro.originalspace.condens.ConditionalEnsembles",
    notes="cluster within each given class, align & merge sub-clusters",
))


class ConditionalEnsembles(AlternativeClusterer):
    """CondEns alternative clustering.

    Parameters
    ----------
    n_clusters : int
        Clusters in the alternative solution (also used for the local
        clusterings inside each given class).
    clusterer_factory : callable ``(n_clusters, seed) -> estimator``
        Builds the base clusterer for each given class; default k-means
        (the method is clusterer-agnostic).
    random_state : int, Generator or None

    Attributes
    ----------
    labels_ : ndarray — the aligned global alternative.
    local_labelings_ : list of ndarray (n,) — within-class clusterings,
        padded with ``-1`` outside their class.
    """

    def __init__(self, n_clusters=2, clusterer_factory=None,
                 random_state=None):
        self.n_clusters = n_clusters
        self.clusterer_factory = clusterer_factory
        self.random_state = random_state
        self.labels_ = None
        self.local_labelings_ = None

    def _make_clusterer(self, k, rng):
        if self.clusterer_factory is not None:
            return self.clusterer_factory(k, int(rng.integers(2**31 - 1)))
        return KMeans(n_clusters=k, random_state=int(rng.integers(2**31 - 1)))

    def fit(self, X, given):
        X = check_array(X, min_samples=2)
        n = X.shape[0]
        k = check_n_clusters(self.n_clusters, n)
        given_list = self._given_labels(given)
        if len(given_list) != 1:
            raise ValidationError("expects exactly one given clustering")
        given_labels = given_list[0]
        if given_labels.shape[0] != n:
            raise ValidationError("given clustering length mismatch")
        rng = check_random_state(self.random_state)
        classes = np.unique(given_labels)
        classes = classes[classes != -1]
        if classes.size == 0:
            raise ValidationError("given clustering has no clusters")

        local = []
        centroids = []     # per class: (k_local, d) array
        memberships = []   # per class: list of index arrays per sub-cluster
        for cid in classes:
            members = np.flatnonzero(given_labels == cid)
            labels = np.full(n, -1, dtype=np.int64)
            k_local = min(k, members.size)
            if members.size >= 2 and k_local >= 2:
                clusterer = self._make_clusterer(k_local, rng)
                sub = np.asarray(clusterer.fit(X[members]).labels_)
            else:
                sub = np.zeros(members.size, dtype=np.int64)
            labels[members] = sub
            local.append(labels)
            cents = []
            groups = []
            for sc in np.unique(sub):
                idx = members[sub == sc]
                cents.append(X[idx].mean(axis=0))
                groups.append(idx)
            centroids.append(np.stack(cents))
            memberships.append(groups)

        # Reference class: the one with the most sub-clusters.
        ref = int(np.argmax([c.shape[0] for c in centroids]))
        out = np.full(n, -1, dtype=np.int64)
        next_free = centroids[ref].shape[0]
        for ci in range(len(classes)):
            if ci == ref:
                mapping = {j: j for j in range(centroids[ci].shape[0])}
            else:
                cost = cdist_sq(centroids[ci], centroids[ref])
                rows, cols = linear_sum_assignment(cost)
                mapping = {int(r): int(c) for r, c in zip(rows, cols)}
            for j, idx in enumerate(memberships[ci]):
                target = mapping.get(j)
                if target is None:
                    target = next_free
                    next_free += 1
                out[idx] = target
        noise = given_labels == -1
        out[noise] = -1
        self.labels_ = out
        self.local_labelings_ = local
        return self

"""Meta clustering (Caruana et al. 2006) — slide 29.

Step 1 generates many base clusterings by undirected diversification
(random restarts, Zipf-weighted features, varying k); step 2 groups the
base clusterings at the meta level by a clustering-dissimilarity measure
and returns one representative per meta-cluster.

The tutorial's criticism — blind generation risks many near-duplicate
solutions — is observable on the fitted estimator via
``duplication_rate_`` (experiment F15).
"""

from __future__ import annotations

import numpy as np

from ..cluster.hierarchical import LinkageMatrix
from ..cluster.kmeans import KMeans
from ..core.base import MultiClusteringEstimator
from ..core.taxonomy import Processing, SearchSpace, TaxonomyEntry, register
from ..exceptions import ValidationError
from ..metrics.clusterings import rand_dissimilarity
from ..utils.validation import check_array, check_random_state

__all__ = ["MetaClustering"]


register(TaxonomyEntry(
    key="meta-clustering",
    reference="Caruana et al., 2006",
    search_space=SearchSpace.ORIGINAL,
    processing=Processing.INDEPENDENT,
    given_knowledge=False,
    n_clusterings=">=2",
    view_detection="",
    flexible_definition=True,
    estimator="repro.originalspace.meta.MetaClustering",
    notes="undirected generation, meta-level grouping",
))


class MetaClustering(MultiClusteringEstimator):
    """Generate-then-group meta clustering.

    Parameters
    ----------
    n_base : int
        Number of base clusterings to generate.
    n_clusters : int or sequence of int
        ``k`` for the base k-means runs; a sequence is cycled through.
    n_meta_clusters : int
        Number of representative solutions to return.
    zipf_alpha : float
        Feature weights are drawn ``w_j = u_j^{-alpha}`` with uniform
        ``u_j`` (Caruana et al.'s Zipf-distributed feature weighting);
        0 disables weighting.
    dissimilarity : callable ``(labels_a, labels_b) -> float``
        Meta-level distance; the paper uses the Rand index.
    random_state : int, Generator or None

    Attributes
    ----------
    base_labelings_ : list of ndarray — all generated clusterings.
    meta_labels_ : ndarray (n_base,) — meta-cluster id per base clustering.
    labelings_ : list of ndarray — the representatives (meta-medoids).
    duplication_rate_ : float
        Fraction of base-clustering pairs with dissimilarity below
        ``duplicate_threshold`` (the blind-generation redundancy measure).
    duplicate_threshold : float
    """

    def __init__(self, n_base=30, n_clusters=2, n_meta_clusters=3,
                 zipf_alpha=1.0, dissimilarity=rand_dissimilarity,
                 duplicate_threshold=0.05, random_state=None):
        if n_base < 2:
            raise ValidationError("n_base must be >= 2")
        self.n_base = int(n_base)
        self.n_clusters = n_clusters
        self.n_meta_clusters = int(n_meta_clusters)
        self.zipf_alpha = float(zipf_alpha)
        self.dissimilarity = dissimilarity
        self.duplicate_threshold = float(duplicate_threshold)
        self.random_state = random_state
        self.base_labelings_ = None
        self.meta_labels_ = None
        self.labelings_ = None
        self.duplication_rate_ = None

    def _k_sequence(self):
        ks = self.n_clusters
        if np.isscalar(ks):
            ks = [int(ks)]
        return [int(k) for k in ks]

    def fit(self, X):
        X = check_array(X, min_samples=2)
        rng = check_random_state(self.random_state)
        ks = self._k_sequence()
        base = []
        for i in range(self.n_base):
            if self.zipf_alpha > 0:
                u = rng.uniform(0.05, 1.0, size=X.shape[1])
                weights = u ** (-self.zipf_alpha)
                weights /= weights.max()
            else:
                weights = np.ones(X.shape[1])
            Xw = X * np.sqrt(weights)[None, :]
            k = ks[i % len(ks)]
            km = KMeans(n_clusters=k, n_init=1, init="random",
                        random_state=rng.integers(2**31 - 1))
            base.append(km.fit(Xw).labels_)
        m = len(base)
        d = np.zeros((m, m))
        for i in range(m):
            for j in range(i + 1, m):
                d[i, j] = d[j, i] = self.dissimilarity(base[i], base[j])
        n_meta = min(self.n_meta_clusters, m)
        lm = LinkageMatrix(d, linkage="average")
        while len(lm.active) > n_meta:
            pair = lm.closest_pair()
            if pair is None:
                break
            lm.merge(pair[0], pair[1])
        meta_labels = lm.current_labels(m)
        representatives = []
        for meta_id in np.unique(meta_labels):
            members = np.flatnonzero(meta_labels == meta_id)
            sub = d[np.ix_(members, members)]
            medoid = members[int(np.argmin(sub.sum(axis=1)))]
            representatives.append(base[medoid])
        off_diag = d[np.triu_indices(m, k=1)]
        self.duplication_rate_ = float(
            np.mean(off_diag < self.duplicate_threshold)
        ) if off_diag.size else 0.0
        self.base_labelings_ = base
        self.meta_labels_ = meta_labels
        self.labelings_ = representatives
        return self

"""Chaos harness: inject real faults into a real server, prove recovery.

``repro chaos`` boots an actual ``repro serve`` subprocess, drives it
with a threaded load generator, injects failures mid-load, and asserts
the self-healing invariants the serving layer claims:

* **no wrong result is ever served** — every model payload returned
  over HTTP is compared byte-for-byte (canonical JSON) against a
  reference fit computed directly in this process;
* **the service recovers within a bound** — after each fault, the time
  until the next fresh fit completes is measured and capped;
* **failures are accounted for** — quarantine records, degraded-mode
  gauges, shed counters and failure kinds must show up where the
  failure taxonomy (``docs/robustness.md``) says they will.

Five scenarios, one fault each:

``worker-kill``
    SIGKILL a pool worker mid-fit; the pool must reap and respawn it,
    the in-flight job must fail *cleanly* (kind ``crashed``), and a
    resubmission must succeed with a correct payload.
``corrupt-entry``
    Flip one byte of a cached entry on disk; the next request for that
    key must quarantine the corrupt file and transparently refit,
    returning correct predictions — never the corrupt payload.
``disk-full``
    Push the cache directory past its ``--cache-max-bytes`` cap; the
    server must degrade to memory-only caching (still answering
    correctly), then heal back to disk once space frees.
``overload``
    Flood the server far past its shedding threshold; availability
    (well-formed, honest responses) must stay >= 99% and at least part
    of the flood must be shed with ``Retry-After``.
``server-kill``
    SIGKILL the whole server; a replacement started on the same cache
    directory must come back healthy within the bound and serve the
    pre-crash cache (hit, byte-identical payload).

``--smoke`` runs only ``worker-kill`` + ``corrupt-entry`` with a small
workload — the pre-PR checklist gate (< 10 s on a warm machine).

This module never prints (rule ``RL003``); it returns a report dict
and logs. ``repro chaos`` (the CLI) renders and persists it.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

from ..exceptions import ValidationError
from ..io import dumps, estimator_to_dict
from ..observability.logs import get_logger

__all__ = ["run_chaos", "SCENARIOS", "SMOKE_SCENARIOS"]

logger = get_logger("repro.robustness.chaos")

#: Full-run scenario order (each boots its own server).
SCENARIOS = ("worker-kill", "corrupt-entry", "disk-full", "overload",
             "server-kill")
#: ``--smoke`` subset: the two cheapest faults, one shared server.
SMOKE_SCENARIOS = ("worker-kill", "corrupt-entry")

#: Seconds a freshly started server gets to answer ``GET /healthz``.
READY_TIMEOUT = 30.0
#: Recovery bound asserted after every fault (seconds until the next
#: fresh fit completes / the restarted server is healthy).
RECOVERY_BOUND = 30.0
#: Availability floor asserted during the overload flood (percent).
AVAILABILITY_FLOOR = 99.0


# -- workload ---------------------------------------------------------------


def _dataset(rows, cols, seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows, cols)).round(6).tolist()


def _fast_spec(seed):
    """A sub-100ms KMeans fit; availability probes and cache fodder."""
    return {"estimator": "KMeans", "dataset": _dataset(60, 4, 7),
            "params": {"n_clusters": 3}, "seed": int(seed)}


def _slow_spec(seed, rows=1200):
    """A multi-second SpectralClustering fit; keeps pool workers busy
    long enough to be killed mid-flight."""
    return {"estimator": "SpectralClustering",
            "dataset": _dataset(rows, 6, 11),
            "params": {"n_clusters": 4}, "seed": int(seed)}


class _Reference:
    """Local reference fits, keyed by spec, for correctness checks."""

    def __init__(self):
        self._models = {}
        self._lock = threading.Lock()

    @staticmethod
    def _spec_key(spec):
        return dumps({k: spec.get(k) for k in ("estimator", "dataset",
                                               "params", "seed")},
                     sort_keys=True)

    def model(self, spec):
        """Canonical serialized model for ``spec``, fit locally —
        mirrors the scheduler's seed handling exactly."""
        from ..serve.scheduler import servable_estimators

        key = self._spec_key(spec)
        with self._lock:
            cached = self._models.get(key)
        if cached is not None:
            return cached
        cls = servable_estimators()[spec["estimator"]]
        params = dict(spec.get("params") or {})
        seed = spec.get("seed")
        if seed is not None and "random_state" in cls._param_names():
            params.setdefault("random_state", int(seed))
        estimator = cls(**params)
        estimator.fit(np.asarray(spec["dataset"], dtype=np.float64))
        model = dumps(estimator_to_dict(estimator), sort_keys=True)
        with self._lock:
            self._models[key] = model
        return model

    def matches(self, spec, payload):
        """True iff the served payload's model is byte-identical to
        the local reference fit."""
        if not isinstance(payload, dict) or "model" not in payload:
            return False
        return dumps(payload["model"], sort_keys=True) == self.model(spec)


# -- server under test ------------------------------------------------------


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class _ServerProcess:
    """One ``repro serve`` subprocess under chaos."""

    def __init__(self, cache_dir, *, jobs=2, port=None, extra_args=()):
        self.cache_dir = str(cache_dir)
        self.port = int(port) if port is not None else _free_port()
        self.url = f"http://127.0.0.1:{self.port}"
        cmd = [sys.executable, "-u", "-m", "repro", "serve",
               "--host", "127.0.0.1", "--port", str(self.port),
               "--jobs", str(int(jobs)), "--cache-dir", self.cache_dir,
               *[str(a) for a in extra_args]]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in [str(_REPO_SRC), env.get("PYTHONPATH")] if p)
        self.proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                                     stderr=subprocess.DEVNULL, env=env)

    @property
    def pid(self):
        return self.proc.pid

    def wait_ready(self, timeout=READY_TIMEOUT):
        """Seconds until ``GET /healthz`` answers; raises on timeout."""
        from ..serve.client import ServeClient, ServerError

        probe = ServeClient(self.url, timeout=2.0, retries=0)
        start = time.monotonic()
        while time.monotonic() - start < timeout:
            if self.proc.poll() is not None:
                raise ValidationError(
                    f"server exited with {self.proc.returncode} before "
                    "becoming ready")
            try:
                if probe.healthz().get("status") == "ok":
                    return time.monotonic() - start
            except ServerError:
                time.sleep(0.05)
        raise ValidationError(f"server not ready after {timeout:.0f}s")

    def worker_pids(self):
        """Live pool-worker children of the server (via ``/proc``)."""
        pids = []
        for entry in os.listdir("/proc"):
            if not entry.isdigit():
                continue
            base = f"/proc/{entry}"
            try:
                with open(f"{base}/status", encoding="ascii",
                          errors="replace") as fh:
                    fields = dict(
                        line.split(":\t", 1) for line in fh
                        if ":\t" in line)
                with open(f"{base}/cmdline", "rb") as fh:
                    cmdline = fh.read()
            except OSError:  # repro: noqa[RL011] - the process exited between listdir and read
                continue
            if int(fields.get("PPid", "0")) != self.proc.pid:
                continue
            if (b"resource_tracker" in cmdline
                    or b"semaphore_tracker" in cmdline):
                continue
            pids.append(int(entry))
        return sorted(pids)

    def kill(self):
        """SIGKILL the server (the ``server-kill`` fault)."""
        with contextlib.suppress(ProcessLookupError):
            os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=10)

    def stop(self, timeout=15.0):
        """Graceful shutdown; escalates to SIGKILL at ``timeout``."""
        if self.proc.poll() is not None:
            return
        with contextlib.suppress(ProcessLookupError):
            self.proc.terminate()
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            logger.warning("server %d ignored SIGTERM; killing",
                           self.proc.pid)
            self.kill()


_REPO_SRC = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


# -- load generation --------------------------------------------------------


class _Samples:
    """Thread-safe request log with availability/latency rollups.

    *Available* means the server gave a well-formed, honest answer:
    success, a clean failure record, or an explicit backpressure reply
    (429/503 with ``Retry-After``). Connection errors, hangs, and 5xx
    breakage count against availability.
    """

    AVAILABLE = ("ok", "failed-clean", "shed", "queue-full", "deadline")

    def __init__(self):
        self._lock = threading.Lock()
        self.rows = []

    def add(self, outcome, latency, status=None, correct=None, note=None):
        with self._lock:
            self.rows.append({"outcome": outcome,
                              "latency": float(latency),
                              "status": status, "correct": correct,
                              "note": note})

    def count(self, *outcomes):
        with self._lock:
            return sum(1 for r in self.rows if r["outcome"] in outcomes)

    def wrong_results(self):
        with self._lock:
            return [r for r in self.rows if r["correct"] is False]

    def availability_pct(self):
        with self._lock:
            if not self.rows:
                return 100.0
            good = sum(1 for r in self.rows
                       if r["outcome"] in self.AVAILABLE)
            return 100.0 * good / len(self.rows)

    def latency_quantile(self, q):
        with self._lock:
            lat = sorted(r["latency"] for r in self.rows
                         if r["outcome"] == "ok")
        if not lat:
            return None
        index = min(int(q * len(lat)), len(lat) - 1)
        return lat[index]

    def summary(self):
        with self._lock:
            total = len(self.rows)
        return {
            "requests": total,
            "ok": self.count("ok"),
            "failed_clean": self.count("failed-clean"),
            "shed": self.count("shed", "queue-full"),
            "unavailable": total - self.count(*self.AVAILABLE),
            "wrong_results": len(self.wrong_results()),
            "availability_pct": round(self.availability_pct(), 3),
            "p99_seconds": self.latency_quantile(0.99),
        }


def _fit_once(client, spec, reference, samples, *, deadline_ms=None,
              timeout=60.0):
    """Submit one fit, wait it out, verify the payload; one sample.

    Returns the terminal job dict (or ``None`` when the request never
    produced one).
    """
    from ..serve.client import ServerError

    start = time.perf_counter()
    try:
        job = client.submit(spec["estimator"], spec["dataset"],
                            params=spec.get("params"),
                            seed=spec.get("seed"),
                            deadline_ms=deadline_ms)
        if job.get("status") not in ("done", "failed"):
            _, job = client.wait(job["id"], timeout=timeout, poll=0.05)
        latency = time.perf_counter() - start
        if job.get("status") == "done":
            payload = client.get_model(job["key"])
            correct = reference.matches(spec, payload)
            samples.add("ok" if correct else "wrong-result", latency,
                        status=200, correct=correct,
                        note=None if correct else "payload mismatch")
        else:
            error = job.get("error") or {}
            outcome = ("deadline" if error.get("kind") == "deadline"
                       else "failed-clean")
            samples.add(outcome, latency, status=None,
                        note=error.get("kind"))
        return job
    except ServerError as exc:
        latency = time.perf_counter() - start
        if exc.status in (429, 503):
            retry_after = (exc.body or {}).get("error") is not None
            samples.add("queue-full" if exc.status == 429 else "shed",
                        latency, status=exc.status,
                        note="json-body" if retry_after else "no-body")
        elif exc.status is None:
            samples.add("unreachable", latency, note=str(exc))
        else:
            samples.add("server-error", latency, status=exc.status,
                        note=str(exc))
        return None


def _load_thread(url, specs, reference, samples, stop, *, retries=0,
                 deadline_ms=None):
    """Background load: round-robin ``specs`` until ``stop`` is set."""
    from ..serve.client import ServeClient

    client = ServeClient(url, timeout=10.0, retries=retries, seed=1234)
    index = 0
    while not stop.is_set():
        _fit_once(client, specs[index % len(specs)], reference, samples,
                  deadline_ms=deadline_ms)
        index += 1


# -- scenarios --------------------------------------------------------------


def _metric_value(client, name, default=0.0):
    stats = client.stats()
    entry = (stats.get("metrics") or {}).get(name) or {}
    return float(entry.get("value", default))


def _scenario_worker_kill(workdir, *, jobs, smoke, server=None):
    """SIGKILL one pool worker mid-fit; pool reaps, respawns, recovers."""
    from ..serve.client import ServeClient

    reference = _Reference()
    samples = _Samples()
    own_server = server is None
    if own_server:
        server = _ServerProcess(os.path.join(workdir, "cache-worker-kill"),
                                jobs=jobs)
        server.wait_ready()
    try:
        client = ServeClient(server.url, timeout=10.0, retries=2, seed=7)
        rows = 800 if smoke else 1200
        slow = [_slow_spec(seed, rows=rows)
                for seed in range(2 if smoke else 4)]
        stop = threading.Event()
        loader = threading.Thread(
            target=_load_thread,
            args=(server.url, slow, reference, samples, stop),
            daemon=True)
        loader.start()
        # wait for a pool worker to materialize, then shoot it
        victim = None
        deadline = time.monotonic() + 20.0
        while victim is None and time.monotonic() < deadline:
            pids = server.worker_pids()
            if pids:
                victim = pids[-1]
            else:
                time.sleep(0.05)
        if victim is None:
            raise ValidationError("no pool worker appeared to kill")
        os.kill(victim, signal.SIGKILL)
        killed_at = time.monotonic()
        logger.info("killed pool worker %d", victim)
        # quiesce the load so recovery measures the pool, not the queue
        stop.set()
        # recovery: a fresh fit (new key, so no cache assist) completes
        probe = _fit_once(client, _slow_spec(97, rows=rows), reference,
                          samples, timeout=60.0)
        recovery = time.monotonic() - killed_at
        loader.join(timeout=60.0)
        crashes = _metric_value(client, "pool.workers.respawned")
        failures = {
            "respawned_workers": crashes,
            "crashed_jobs": samples.count("failed-clean"),
        }
        passed = (probe is not None and probe.get("status") == "done"
                  and not samples.wrong_results()
                  and recovery <= RECOVERY_BOUND
                  and client.healthz().get("status") == "ok")
        return {"scenario": "worker-kill", "passed": bool(passed),
                "recovery_seconds": round(recovery, 3),
                "detail": failures, **samples.summary()}
    finally:
        if own_server:
            server.stop()


def _scenario_corrupt_entry(workdir, *, jobs, smoke, server=None):
    """Bit-flip a cached entry; it must be quarantined, never served."""
    from ..serve.client import ServeClient

    reference = _Reference()
    samples = _Samples()
    own_server = server is None
    cache_dir = (os.path.join(workdir, "cache-corrupt") if own_server
                 else server.cache_dir)
    if own_server:
        server = _ServerProcess(cache_dir, jobs=jobs)
        server.wait_ready()
    try:
        client = ServeClient(server.url, timeout=10.0, retries=2, seed=7)
        spec = _fast_spec(41)
        seeded = _fit_once(client, spec, reference, samples)
        if seeded is None or seeded.get("status") != "done":
            raise ValidationError("could not seed the cache entry")
        key = seeded["key"]
        entry = os.path.join(server.cache_dir, f"{key}.json")
        with open(entry, "rb") as fh:
            blob = bytearray(fh.read())
        flip = len(blob) // 2
        blob[flip] ^= 0xFF
        with open(entry, "wb") as fh:
            fh.write(blob)
        corrupted_at = time.monotonic()
        logger.info("flipped byte %d of %s", flip, entry)
        # the resubmission must NOT be a cache hit and must be correct
        after = _fit_once(client, spec, reference, samples)
        recovery = time.monotonic() - corrupted_at
        quarantine = os.path.join(server.cache_dir, "quarantine")
        q_records = ([name for name in os.listdir(quarantine)
                      if name.endswith(".error.json")]
                     if os.path.isdir(quarantine) else [])
        quarantined = _metric_value(client,
                                    "serve.cache.integrity_quarantined")
        passed = (after is not None and after.get("status") == "done"
                  and not after.get("cached")
                  and not samples.wrong_results()
                  and len(q_records) >= 1 and quarantined >= 1
                  and recovery <= RECOVERY_BOUND)
        return {"scenario": "corrupt-entry", "passed": bool(passed),
                "recovery_seconds": round(recovery, 3),
                "detail": {"quarantine_records": len(q_records),
                           "integrity_quarantined_metric": quarantined,
                           "refit_was_cache_hit": bool(
                               after and after.get("cached"))},
                **samples.summary()}
    finally:
        if own_server:
            server.stop()


def _scenario_disk_full(workdir, *, jobs, smoke):
    """Fill the cache past its byte cap; degrade to memory, then heal."""
    from ..serve.client import ServeClient

    reference = _Reference()
    samples = _Samples()
    cache_dir = os.path.join(workdir, "cache-disk-full")
    cap = 256 * 1024
    server = _ServerProcess(cache_dir, jobs=jobs,
                            extra_args=["--cache-max-bytes", cap])
    try:
        server.wait_ready()
        client = ServeClient(server.url, timeout=10.0, retries=2, seed=7)
        filler = os.path.join(cache_dir, "filler.bin")
        with open(filler, "wb") as fh:
            fh.write(b"\0" * cap)
        filled_at = time.monotonic()
        # ENOSPC territory: the fit must still answer correctly, from
        # the in-memory overlay, with the health endpoint saying so
        degraded_job = _fit_once(client, _fast_spec(51), reference,
                                 samples)
        health = client.healthz()
        degraded_mode = health.get("cache_mode")
        write_errors = _metric_value(client, "serve.cache.write_errors")
        os.unlink(filler)
        # healing: the next fit writes to disk again and flushes the
        # overlay; cache_mode returns to "disk"
        _fit_once(client, _fast_spec(52), reference, samples)
        healed_mode = client.healthz().get("cache_mode")
        recovery = time.monotonic() - filled_at
        entry_files = [name for name in os.listdir(cache_dir)
                       if name.endswith(".json")]
        passed = (degraded_job is not None
                  and degraded_job.get("status") == "done"
                  and degraded_mode == "degraded-memory"
                  and write_errors >= 1
                  and healed_mode == "disk"
                  and len(entry_files) >= 2
                  and not samples.wrong_results()
                  and recovery <= RECOVERY_BOUND)
        return {"scenario": "disk-full", "passed": bool(passed),
                "recovery_seconds": round(recovery, 3),
                "detail": {"degraded_cache_mode": degraded_mode,
                           "healed_cache_mode": healed_mode,
                           "write_errors_metric": write_errors,
                           "entries_on_disk_after_heal": len(entry_files)},
                **samples.summary()}
    finally:
        server.stop()


def _scenario_overload(workdir, *, jobs, smoke):
    """Flood past the shed threshold; availability must hold >= 99%."""
    from ..serve.client import ServeClient

    reference = _Reference()
    samples = _Samples()
    cache_dir = os.path.join(workdir, "cache-overload")
    server = _ServerProcess(cache_dir, jobs=jobs,
                            extra_args=["--shed-target-wait", "1.0",
                                        "--queue-limit", "8"])
    try:
        server.wait_ready()
        warm = ServeClient(server.url, timeout=10.0, retries=2, seed=7)
        # one slow fit first so the shedder has a service-time estimate
        _fit_once(warm, _slow_spec(61, rows=900), reference, samples)
        stop = threading.Event()
        threads = []
        for lane in range(6):
            specs = [_slow_spec(100 + lane * 50 + i, rows=900)
                     for i in range(8)]
            thread = threading.Thread(
                target=_load_thread,
                args=(server.url, specs, reference, samples, stop),
                daemon=True)
            thread.start()
            threads.append(thread)
        time.sleep(8.0 if not smoke else 4.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=120.0)
        shed_metric = _metric_value(warm, "serve.jobs.shed")
        queue_metric = _metric_value(warm, "serve.queue.rejected")
        availability = samples.availability_pct()
        passed = (availability >= AVAILABILITY_FLOOR
                  and (samples.count("shed", "queue-full") >= 1
                       or shed_metric + queue_metric >= 1)
                  and not samples.wrong_results()
                  and warm.healthz().get("status") == "ok")
        return {"scenario": "overload", "passed": bool(passed),
                "recovery_seconds": 0.0,
                "detail": {"shed_metric": shed_metric,
                           "queue_rejected_metric": queue_metric},
                **samples.summary()}
    finally:
        server.stop()


def _scenario_server_kill(workdir, *, jobs, smoke):
    """kill -9 the whole server; a restart on the same cache dir must
    come back healthy and serve the pre-crash cache."""
    from ..serve.client import ServeClient

    reference = _Reference()
    samples = _Samples()
    cache_dir = os.path.join(workdir, "cache-server-kill")
    server = _ServerProcess(cache_dir, jobs=jobs)
    replacement = None
    try:
        server.wait_ready()
        client = ServeClient(server.url, timeout=10.0, retries=2, seed=7)
        spec = _fast_spec(71)
        seeded = _fit_once(client, spec, reference, samples)
        if seeded is None or seeded.get("status") != "done":
            raise ValidationError("could not seed the cache before the "
                                  "server kill")
        server.kill()
        killed_at = time.monotonic()
        # same port on purpose: clients with backoff ride through
        replacement = _ServerProcess(cache_dir, jobs=jobs,
                                     port=server.port)
        ready_seconds = replacement.wait_ready()
        recovery = time.monotonic() - killed_at
        survivor = ServeClient(replacement.url, timeout=10.0, retries=5,
                               seed=7)
        after = _fit_once(survivor, spec, reference, samples)
        passed = (after is not None and after.get("status") == "done"
                  and bool(after.get("cached"))
                  and not samples.wrong_results()
                  and recovery <= RECOVERY_BOUND)
        return {"scenario": "server-kill", "passed": bool(passed),
                "recovery_seconds": round(recovery, 3),
                "detail": {"replacement_ready_seconds":
                           round(ready_seconds, 3),
                           "cache_survived": bool(
                               after and after.get("cached"))},
                **samples.summary()}
    finally:
        server.stop()
        if replacement is not None:
            replacement.stop()


_SCENARIO_FUNCS = {
    "worker-kill": _scenario_worker_kill,
    "corrupt-entry": _scenario_corrupt_entry,
    "disk-full": _scenario_disk_full,
    "overload": _scenario_overload,
    "server-kill": _scenario_server_kill,
}


def run_chaos(smoke=False, jobs=2, scenarios=None, workdir=None):
    """Run the chaos suite; returns the report dict.

    Parameters
    ----------
    smoke : bool
        Run only :data:`SMOKE_SCENARIOS` against one shared server —
        the fast pre-PR gate.
    jobs : int
        Pool size for every server under test (>= 2 so worker-kill has
        a process to kill).
    scenarios : sequence of str or None
        Subset of :data:`SCENARIOS` to run (full mode only).
    workdir : str or None
        Scratch directory; a temp dir (cleaned up) by default.
    """
    if int(jobs) < 2:
        raise ValidationError(
            f"chaos needs jobs >= 2 (a worker to kill), got {jobs}")
    chosen = tuple(scenarios) if scenarios else (
        SMOKE_SCENARIOS if smoke else SCENARIOS)
    unknown = set(chosen) - set(_SCENARIO_FUNCS)
    if unknown:
        raise ValidationError(
            f"unknown chaos scenario(s) {sorted(unknown)}; "
            f"choose from {sorted(_SCENARIO_FUNCS)}")
    owns_workdir = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    started = time.monotonic()
    results = []
    shared = None
    try:
        if smoke:
            # one server for the whole smoke run keeps it under the
            # 10-second budget (interpreter start-up dominates)
            shared = _ServerProcess(os.path.join(workdir, "cache-smoke"),
                                    jobs=jobs)
            shared.wait_ready()
        for name in chosen:
            logger.info("chaos scenario %s starting", name)
            func = _SCENARIO_FUNCS[name]
            try:
                if smoke and name in ("worker-kill", "corrupt-entry"):
                    result = func(workdir, jobs=jobs, smoke=smoke,
                                  server=shared)
                else:
                    result = func(workdir, jobs=jobs, smoke=smoke)
            except Exception as exc:
                logger.exception("chaos scenario %s blew up", name)
                result = {"scenario": name, "passed": False,
                          "error": f"{type(exc).__name__}: {exc}"}
            results.append(result)
            logger.info("chaos scenario %s: %s", name,
                        "PASS" if result.get("passed") else "FAIL")
    finally:
        if shared is not None:
            shared.stop()
        if owns_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    report = {
        "mode": "smoke" if smoke else "full",
        "jobs": int(jobs),
        "scenarios": results,
        "total_seconds": round(time.monotonic() - started, 3),
        "passed": all(r.get("passed") for r in results),
        "invariants": {
            "wrong_results_served": sum(r.get("wrong_results", 0)
                                        for r in results),
            "recovery_bound_seconds": RECOVERY_BOUND,
            "availability_floor_pct": AVAILABILITY_FLOOR,
        },
    }
    return report


def render_report(report):
    """Human-readable summary of a chaos report (for the CLI)."""
    lines = [f"chaos {report['mode']} run: "
             f"{'PASS' if report['passed'] else 'FAIL'} "
             f"({report['total_seconds']:.1f}s, jobs={report['jobs']})"]
    for result in report["scenarios"]:
        status = "PASS" if result.get("passed") else "FAIL"
        if "error" in result:
            lines.append(f"  {result['scenario']:>14}  {status}  "
                         f"[{result['error']}]")
            continue
        p99 = result.get("p99_seconds")
        lines.append(
            f"  {result['scenario']:>14}  {status}  "
            f"avail={result.get('availability_pct', 100.0):6.2f}%  "
            f"p99={'n/a' if p99 is None else f'{p99:.2f}s'}  "
            f"recovery={result.get('recovery_seconds', 0.0):.1f}s  "
            f"requests={result.get('requests', 0)}")
    wrong = report["invariants"]["wrong_results_served"]
    lines.append(f"  wrong results served: {wrong}")
    return "\n".join(lines)


def write_report(report, path):
    """Persist the report as indented JSON (the BENCH artifact)."""
    payload = dumps(report, indent=2)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)
        fh.write("\n")
    return path

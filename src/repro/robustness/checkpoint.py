"""Crash-safe run journal: checkpoint/resume for experiment sweeps.

A :class:`RunJournal` persists every completed
:class:`~repro.experiments.ExperimentOutcome` of a sweep as one JSON
record per line. Durability over speed:

* every :meth:`~RunJournal.record` rewrites the journal through a
  temporary file, ``fsync``\\ s it, and atomically ``os.replace``\\ s it
  over the previous version (plus a best-effort directory fsync), so a
  crash — power loss, SIGKILL, OOM — at any instant leaves either the
  old journal or the new one, never a half-written file;
* loading tolerates a **truncated trailing line** anyway (a torn write
  from an append-mode writer or an exotic filesystem): the partial
  record is dropped with a warning and everything before it is kept.
  Corruption *before* the last line is refused loudly — that is not a
  torn write, and silently dropping completed work would cause the very
  recomputation the journal exists to avoid.

``run_experiments(..., journal=...)`` consults the journal before each
experiment: a key whose prior outcome was ``"ok"`` is skipped (surfaced
as status ``"skipped"``, table preserved) and only failed or missing
keys execute. The CLI exposes this as ``run --checkpoint DIR`` /
``--resume``.

Parallel sweeps (:mod:`repro.robustness.pool`) add **per-worker
shards**: worker ``i`` journals its own outcomes to
``journal.worker-<i>.jsonl`` (same atomic discipline) *before*
reporting them, and loading a journal transparently merges any shards
next to it — an ``"ok"`` record always wins a conflict, so a resume is
correct regardless of which process died mid-write or in which order
workers finished. :meth:`RunJournal.consolidate` folds the shards back
into the main journal at the end of a clean sweep.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib

from ..exceptions import ValidationError
from ..observability.logs import get_logger

__all__ = ["RunJournal", "canonical_summary", "load_journal_records"]

logger = get_logger("repro.robustness.checkpoint")

#: Default journal filename inside a ``--checkpoint`` directory.
JOURNAL_NAME = "journal.jsonl"


def _quarantine_journal_line(path, line_no, line, reason):
    """Preserve a checksum-failed journal line for the operator.

    The bad line moves to ``<dir>/quarantine/`` next to a structured
    ``IntegrityError`` record (mirroring the model-registry quarantine)
    and is dropped from the load. Best-effort: a quarantine that cannot
    be written still drops the corrupt record from the results.
    """
    from ..observability.registry import record as record_metric

    record_metric("robustness.journal.integrity_quarantined")
    logger.error("%s:%d: journal record failed its checksum (%s); "
                 "quarantining the line", path, line_no, reason)
    try:
        qdir = pathlib.Path(path).parent / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        name = f"{pathlib.Path(path).name}.line-{line_no}"
        (qdir / name).write_text(line + "\n", encoding="utf-8")
        error_record = {
            "error": "IntegrityError",
            "file": str(path),
            "line": line_no,
            "reason": reason,
        }
        (qdir / f"{name}.error.json").write_text(
            json.dumps(error_record, sort_keys=True) + "\n",
            encoding="utf-8")
    except OSError as exc:
        logger.error("could not quarantine %s:%d: %s (record dropped "
                     "anyway)", path, line_no, exc)


def load_journal_records(path):
    """Parse a JSONL journal, tolerating a truncated trailing line.

    Returns a list of dicts. A final line that is not valid JSON (torn
    write) is dropped with a warning; an invalid line anywhere else
    raises :class:`~repro.exceptions.ValidationError` because it means
    real corruption, not an interrupted append.

    Records carrying an in-band ``"sha256"`` (written by every
    :class:`RunJournal` flush) are verified against the checksum of the
    rest of the record; a *parseable* record whose bytes no longer match
    — bit rot or hand editing rather than a torn write — is quarantined
    (see :func:`_quarantine_journal_line`) and dropped, so silently
    corrupted results are recomputed instead of trusted. Checksum-less
    records (older journals, hand-written fixtures) load as before.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    while lines and not lines[-1].strip():
        lines.pop()
    records = []
    for line_no, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if line_no == len(lines):
                logger.warning(
                    "%s:%d: dropping truncated trailing journal record "
                    "(torn write recovered)", path, line_no,
                )
                break
            raise ValidationError(
                f"{path}:{line_no}: corrupt journal record ({exc}); "
                "only the trailing line may be truncated"
            ) from exc
        if not isinstance(record, dict):
            raise ValidationError(
                f"{path}:{line_no}: journal record must be a JSON object, "
                f"got {type(record).__name__}"
            )
        expected = record.pop("sha256", None)
        if expected is not None:
            from ..io import payload_checksum  # lazy: io imports core

            actual = payload_checksum(record)
            if actual != expected:
                _quarantine_journal_line(
                    path, line_no, line,
                    f"checksum mismatch (stored {str(expected)[:16]}..., "
                    f"computed {actual[:16]}...)")
                continue
        records.append(record)
    return records


#: Volatile (timing/host-dependent) fields excluded from the canonical
#: summary at both the outcome and failure level.
_VOLATILE_FIELDS = ("elapsed", "timings", "peak_kb", "spans")
_VOLATILE_FAILURE_FIELDS = ("elapsed", "traceback", "message")


def canonical_summary(records):
    """Deterministic byte string summarising a sweep's results.

    ``records`` is a list of outcome dicts (``ExperimentOutcome.
    to_dict()``; outcome objects are accepted too). The summary is the
    key-sorted JSON of every record with volatile fields (wall-clock
    timings, tracebacks, human messages embedding durations) removed —
    everything that *should* be identical between a serial sweep, a
    parallel one, and a killed-and-resumed one: keys, statuses, result
    tables, attempt and iteration counts, failure kinds and error
    types. Two sweeps are equivalent iff their summaries are
    byte-identical.
    """
    canonical = []
    for record in records:
        if hasattr(record, "to_dict"):
            record = record.to_dict()
        entry = {k: v for k, v in record.items()
                 if k not in _VOLATILE_FIELDS}
        if entry.get("status") == "skipped":
            entry["status"] = "ok"  # a resumed key is the same result
        failure = entry.get("failure")
        if isinstance(failure, dict):
            entry["failure"] = {
                k: v for k, v in failure.items()
                if k not in _VOLATILE_FAILURE_FIELDS and k != "context"
            }
        canonical.append(entry)
    canonical.sort(key=lambda entry: str(entry.get("key", "")))
    from ..io import dumps  # lazy: io -> core -> pipeline -> robustness

    return dumps(canonical, sort_keys=True).encode("utf-8")


class RunJournal:
    """Atomic, resumable journal of experiment outcomes.

    Parameters
    ----------
    path : str or Path
        The journal file. A directory is accepted too — the journal
        becomes ``<dir>/journal.jsonl``. Missing parent directories are
        created.
    resume : bool
        When true (default) an existing journal is loaded (with
        torn-write recovery) and its outcomes are available via
        :attr:`outcomes`; when false any existing journal is discarded
        and the sweep starts clean.

    Later records for the same experiment key supersede earlier ones,
    so re-running a previously failed experiment overwrites its record.
    """

    def __init__(self, path, *, resume=True):
        path = pathlib.Path(path)
        if path.is_dir() or (not path.suffix and not path.exists()):
            path = path / JOURNAL_NAME
        path.parent.mkdir(parents=True, exist_ok=True)
        self.path = path
        self._outcomes = {}
        self._degraded = False
        if resume:
            self._load()
        else:
            discarded = [p for p in (path, *self.shard_paths())
                         if p.exists()]
            for stale in discarded:
                stale.unlink()
            if discarded:
                logger.info("discarded prior journal %s (+%d shard(s); "
                            "fresh sweep)", path, len(discarded) - 1)

    # -- shards (parallel sweeps) ----------------------------------------

    def shard_path(self, slot):
        """Per-worker shard file for worker ``slot`` (same directory)."""
        stem = self.path.name[:-len(self.path.suffix)] or self.path.name
        return self.path.with_name(f"{stem}.worker-{int(slot)}{self.path.suffix}")

    def shard_paths(self):
        """Existing shard files next to this journal, sorted."""
        stem = self.path.name[:-len(self.path.suffix)] or self.path.name
        return sorted(self.path.parent.glob(
            f"{stem}.worker-*{self.path.suffix}"
        ))

    def _merge(self, outcome):
        """Adopt ``outcome`` unless a conflicting ``"ok"`` already won."""
        prior = self._outcomes.get(outcome.key)
        if prior is not None and prior.status == "ok" \
                and outcome.status != "ok":
            return
        self._outcomes[outcome.key] = outcome

    def _load(self):
        from ..experiments.harness import ExperimentOutcome

        if self.path.exists():
            for record in load_journal_records(self.path):
                outcome = ExperimentOutcome.from_dict(record)
                self._outcomes[outcome.key] = outcome
        shards = self.shard_paths()
        for shard in shards:
            for record in load_journal_records(shard):
                self._merge(ExperimentOutcome.from_dict(record))
        if self._outcomes or shards:
            logger.info(
                "resumed journal %s: %d prior outcome(s), %d ok "
                "(%d shard(s) merged)", self.path, len(self._outcomes),
                len(self.completed_keys()), len(shards),
            )

    def consolidate(self):
        """Fold worker shards into the main journal, then remove them.

        Called by the pool at the end of a clean sweep so the directory
        is left with one canonical ``journal.jsonl``. Safe to call with
        no shards present. Returns the number of shards consumed.
        """
        shards = self.shard_paths()
        if not shards:
            return 0
        self._load_shards_only(shards)
        self._flush()
        for shard in shards:
            shard.unlink()
        logger.info("consolidated %d shard(s) into %s",
                    len(shards), self.path)
        return len(shards)

    def _load_shards_only(self, shards):
        from ..experiments.harness import ExperimentOutcome

        for shard in shards:
            for record in load_journal_records(shard):
                self._merge(ExperimentOutcome.from_dict(record))

    # -- querying --------------------------------------------------------

    @property
    def outcomes(self):
        """Mapping of experiment key -> last recorded outcome (a copy)."""
        return dict(self._outcomes)

    def completed_keys(self):
        """Keys whose last recorded outcome succeeded (safe to skip)."""
        return {key for key, outcome in self._outcomes.items()
                if outcome.status == "ok"}

    def __len__(self):
        return len(self._outcomes)

    def __contains__(self, key):
        return key in self._outcomes

    # -- recording -------------------------------------------------------

    def record(self, outcome):
        """Persist one outcome durably (atomic rewrite + fsync).

        A failing disk (ENOSPC, EIO) does not fail the sweep: the
        journal drops to in-memory-only *degraded* mode — outcomes stay
        queryable, a metric and log fire, and every subsequent flush
        retries the disk so a recovered filesystem heals the journal
        with the full outcome set (nothing recorded while degraded is
        lost, because flushes always rewrite the whole journal).
        """
        self._outcomes[outcome.key] = outcome
        self._flush()

    @property
    def degraded(self):
        """True while the last flush failed and outcomes are held only
        in memory."""
        return self._degraded

    def _flush(self):
        from ..io import dumps, payload_checksum  # lazy: io -> core ->
        from ..observability.registry import record  # pipeline -> robustness

        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                for outcome in self._outcomes.values():
                    rec = outcome.to_dict()
                    # span records live in the trace shards, not the journal
                    rec.pop("spans", None)
                    rec["sha256"] = payload_checksum(rec)
                    fh.write(dumps(rec) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except OSError as exc:
            record("robustness.journal.write_errors")
            record("robustness.journal.degraded", 1, kind="gauge")
            log = logger.error if not self._degraded else logger.warning
            log("journal flush to %s failed (%s); outcomes held in "
                "memory until the disk recovers", self.path, exc)
            self._degraded = True
            with contextlib.suppress(OSError):  # repro: noqa[RL011] - temp cleanup on a failing disk is best-effort
                tmp.unlink()
            return
        if self._degraded:
            self._degraded = False
            record("robustness.journal.degraded", 0, kind="gauge")
            logger.info("journal %s healed; full outcome set rewritten",
                        self.path)
        try:  # directory fsync is best-effort (not all platforms allow it)
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # repro: noqa[RL011] - durability of the rename is already fsynced via the file
            pass

    def __repr__(self):
        return (f"RunJournal({str(self.path)!r}, {len(self)} outcome(s), "
                f"{len(self.completed_keys())} ok)")

"""Fault-contained parallel sweep pool: work-stealing over the grid.

:func:`run_pool` generalises the one-at-a-time isolation of
:mod:`repro.robustness.workers` into a concurrent executor that runs a
whole experiment grid across ``jobs`` worker subprocesses while keeping
every guarantee the serial path has:

* **work stealing** — workers pull the next pending experiment the
  moment they go idle, so a slow key never stalls the rest of the grid
  behind a static partition;
* **fault containment** — each worker is a subprocess in its *own
  process group* with a heartbeat pipe and a hard per-task wall-clock
  deadline; the parent's monitor loop reaps hung workers
  (SIGTERM → SIGKILL, the :mod:`~repro.robustness.workers` semantics),
  respawns replacements, and keeps the sweep going;
* **crash quarantine** — an experiment that kills its worker is retried
  on a fresh worker at most ``crash_retries`` times; past that the key
  is recorded as ``failed/crashed`` (context ``quarantined``) and never
  rescheduled — a circuit breaker per key, not per run;
* **shared-memory data passing** — :class:`SharedDataset` places the
  sweep's arrays in ``multiprocessing.shared_memory`` once; workers
  reconstruct read-only NumPy views instead of receiving N pickled
  copies (:func:`shared_arrays` inside an experiment body);
* **deterministic seeding** — :func:`derive_seed` hashes the
  *experiment key* (never the scheduling slot or completion order) into
  a seed installed for the experiment body (:func:`experiment_seed`),
  so a parallel sweep is bit-identical to a serial one and to any
  resumed continuation;
* **order-independent resume** — each worker journals its own outcomes
  durably (``journal.worker-<slot>.jsonl``, atomic write-then-replace)
  *before* reporting them, and :class:`~repro.robustness.RunJournal`
  merges the shards on load, so ``--resume`` is correct regardless of
  which process died mid-write.

Ctrl-C SIGTERMs every worker's process group, leaves the durable
shards in place for resume, and propagates ``KeyboardInterrupt`` so
the CLI exits 130.
"""

from __future__ import annotations

import contextvars
import hashlib
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as _mp_connection
from typing import Any, Optional

import numpy as np

from ..exceptions import ValidationError
from ..observability.logs import get_logger
from .checkpoint import RunJournal
from .workers import (
    reap_process,
    worker_failure_record,
    _own_process_group,
    _pick_context,
    _signal_name,
)

__all__ = [
    "SharedDataset",
    "derive_seed",
    "experiment_seed",
    "resolve_jobs",
    "run_pool",
    "shared_arrays",
]

logger = get_logger("repro.robustness.pool")

#: Monitor-loop poll interval while waiting on worker pipes (seconds).
_POLL_SECONDS = 0.05


# ---------------------------------------------------------------------------
# Deterministic per-key seeds


_CURRENT_SEED: contextvars.ContextVar = contextvars.ContextVar(
    "repro_experiment_seed", default=None
)

_SHARED_ARRAYS: contextvars.ContextVar = contextvars.ContextVar(
    "repro_shared_arrays", default=None
)


def derive_seed(key, base_seed=0):
    """Deterministic 32-bit seed for one experiment key.

    The seed is a function of ``(base_seed, key)`` only — never of the
    scheduling slot, worker id, or completion order — so the same grid
    produces the same seeds under ``jobs=1``, ``jobs=N``, and any
    resumed continuation.
    """
    digest = hashlib.sha256(
        f"{int(base_seed)}:{key}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "little")


def experiment_seed(default=None):
    """The per-key seed installed for the currently running experiment.

    Inside an experiment body executed by :func:`run_pool` (or the
    serial ``run_experiments`` path) this returns
    ``derive_seed(key, base_seed)`` for the experiment's own key;
    outside a sweep it returns ``default``.
    """
    seed = _CURRENT_SEED.get()
    return default if seed is None else seed


def shared_arrays():
    """The sweep's shared dataset as ``{name: read-only ndarray}``.

    Populated by ``run_experiments(shared_data=...)`` — via
    :class:`SharedDataset` under the pool, directly for serial sweeps —
    and empty outside a sweep.
    """
    arrays = _SHARED_ARRAYS.get()
    return {} if arrays is None else dict(arrays)


def install_experiment_context(run_fn, seed, arrays):
    """Wrap ``run_fn`` so it executes with seed/shared-data installed.

    The wrapper sets the contextvars *at call time* (inside whatever
    process ends up running the experiment), so it works identically
    in-process, under ``fork``, and under ``spawn``.
    """
    def wrapped():
        seed_token = _CURRENT_SEED.set(seed)
        data_token = _SHARED_ARRAYS.set(arrays)
        try:
            return run_fn()
        finally:
            _CURRENT_SEED.reset(seed_token)
            _SHARED_ARRAYS.reset(data_token)

    return wrapped


# ---------------------------------------------------------------------------
# Shared-memory dataset passing


class SharedDataset:
    """A named set of NumPy arrays placed in shared memory once.

    The parent calls :meth:`create` before spawning workers; each
    worker calls :meth:`attach` on the :meth:`descriptor` and gets
    zero-copy **read-only** views, so N workers see one physical copy
    of the dataset instead of N pickled ones.

    The creator owns the segments: call :meth:`unlink` (or use the
    instance as a context manager) when the sweep is done. Workers only
    :meth:`close` their attachments.
    """

    def __init__(self, segments, views, owner):
        self._segments = segments
        self._views = views
        self._owner = owner

    @classmethod
    def create(cls, arrays):
        """Copy ``{name: array}`` into fresh shared-memory segments."""
        from multiprocessing import shared_memory

        segments, views = {}, {}
        try:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                shm = shared_memory.SharedMemory(
                    create=True, size=max(array.nbytes, 1)
                )
                segments[name] = shm
                view = np.ndarray(array.shape, dtype=array.dtype,
                                  buffer=shm.buf)
                view[...] = array
                view.flags.writeable = False
                views[name] = view
        except BaseException:  # re-raised below, so interrupts pass through
            cls(segments, views, owner=True).unlink()
            raise
        return cls(segments, views, owner=True)

    def descriptor(self):
        """JSON-safe recipe workers use to :meth:`attach`."""
        return {
            name: {
                "segment": shm.name,
                "shape": list(self._views[name].shape),
                "dtype": str(self._views[name].dtype),
            }
            for name, shm in self._segments.items()
        }

    @classmethod
    def attach(cls, descriptor):
        """Reconstruct read-only views from a :meth:`descriptor`."""
        from multiprocessing import shared_memory

        segments, views = {}, {}
        for name, spec in descriptor.items():
            try:
                shm = shared_memory.SharedMemory(
                    name=spec["segment"], track=False
                )
            except TypeError:  # Python < 3.13: no track parameter
                shm = shared_memory.SharedMemory(name=spec["segment"])
            segments[name] = shm
            view = np.ndarray(tuple(spec["shape"]),
                              dtype=np.dtype(spec["dtype"]), buffer=shm.buf)
            view.flags.writeable = False
            views[name] = view
        return cls(segments, views, owner=False)

    def arrays(self):
        """``{name: read-only ndarray}`` backed by the shared segments."""
        return dict(self._views)

    def close(self):
        """Drop this process's mapping (the data stays for others)."""
        self._views = {}
        for shm in self._segments.values():
            try:
                shm.close()
            except OSError: # repro: noqa[RL011] - shm close on teardown; the segment is unlinked separately
                pass

    def unlink(self):
        """Close and destroy the segments (creator only)."""
        segments = dict(self._segments)
        self.close()
        self._segments = {}
        if not self._owner:
            return
        for shm in segments.values():
            try:
                shm.unlink()
            except (OSError, FileNotFoundError): # repro: noqa[RL011] - another process already unlinked the segment
                pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.unlink()
        return False


# ---------------------------------------------------------------------------
# Worker side


def _pool_worker_main(conn, slot, experiments, config):
    """Long-lived worker: pull tasks, journal durably, report back.

    The worker places itself in its own process group (so the parent
    can kill the whole tree, and a terminal Ctrl-C does not hit it
    directly), attaches the shared dataset, and loops on the task pipe.
    Every completed outcome is journaled to this worker's own shard
    *before* it is reported, so a parent (or worker) death after the
    journal write can never lose the result.
    """
    from ..experiments.harness import (
        _outcome_from_result,
        _WorkerTracer,
    )
    from ..observability.registry import (
        default_registry,
        reset_default_registry,
    )
    from ..observability.tracer import write_records_jsonl
    from .guard import RunGuard

    _own_process_group()
    # under fork the worker inherits the parent registry's contents;
    # start from zero so the snapshot shipped back with each outcome
    # holds only this worker's work and merges without double counting
    reset_default_registry()
    shared = None
    arrays = None
    if config.get("shared_descriptor"):
        shared = SharedDataset.attach(config["shared_descriptor"])
        arrays = shared.arrays()
    journal = None
    if config.get("shard_path"):
        journal = RunJournal(config["shard_path"])
    sweep_trace = config.get("trace")
    trace_shard = config.get("trace_shard_path")
    shard_records = []

    last_sent = [0.0]
    heartbeat_interval = config.get("heartbeat_interval", 1.0)

    def heartbeat():
        now = time.monotonic()
        if now - last_sent[0] >= heartbeat_interval:
            last_sent[0] = now
            try:
                conn.send(("heartbeat", now))
            except (BrokenPipeError, OSError): # repro: noqa[RL011] - parent already gone; keep finishing the task
                pass  # parent already gone; keep finishing the task

    exitcode = 0
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent is gone: stop pulling work
            if message[0] == "shutdown":
                break
            _, key, seed, task_trace, *rest = (message if len(message) > 3
                                               else (*message, None))
            task_budget = rest[0] if rest else None
            run_fn = install_experiment_context(
                experiments[key], seed, arrays
            )
            trace = task_trace or sweep_trace
            trace_kwargs = {}
            if trace is not None:
                trace_kwargs = {"trace_id": trace.get("trace_id"),
                                "parent_id": trace.get("span_id"),
                                "tags": {"worker": slot,
                                         "pid": os.getpid()}}
            tracer = _WorkerTracer(
                heartbeat,
                profile_memory=config.get("profile_memory", False),
                **trace_kwargs,
            )
            max_seconds = config.get("max_seconds")
            if task_budget is not None:
                # per-task deadline budget: the cooperative bound is
                # the tighter of the sweep budget and the remaining
                # request deadline (the parent still hard-kills us if
                # neither is honored)
                max_seconds = (task_budget if max_seconds is None
                               else min(max_seconds, task_budget))
            guard = RunGuard(
                max_seconds=max_seconds,
                max_retries=config.get("max_retries", 0),
                label=key, tracer=tracer,
            )
            outcome = _outcome_from_result(key, guard.run(run_fn))
            if trace is not None:
                outcome.spans = tracer.to_records()
                if trace_shard is not None:
                    # durable span shard, atomically rewritten after
                    # every task: survives this worker (or the driver)
                    # being SIGKILLed before the pipe delivery
                    shard_records.extend(outcome.spans)
                    write_records_jsonl(trace_shard, shard_records)
            if journal is not None:
                journal.record(outcome)  # durable before it is reported
            try:
                conn.send(("outcome", key, outcome.to_dict(),
                           default_registry().snapshot()))
            except (BrokenPipeError, OSError):
                break  # parent is gone; the shard already has the outcome
    except BaseException as exc:  # repro: noqa[RL004] - reports broken plumbing, then exits nonzero
        logger.warning("pool worker %d broke: %s: %s",
                       slot, type(exc).__name__, exc)
        exitcode = 1
    finally:
        if shared is not None:
            shared.close()
        try:
            conn.close()
        except OSError: # repro: noqa[RL011] - pipe close right before os._exit; nothing to report to
            pass
    os._exit(exitcode)


# ---------------------------------------------------------------------------
# Parent side: the monitor/scheduler loop


@dataclass
class _PoolWorker:
    """Parent-side record of one live worker subprocess."""

    slot: int
    process: Any
    conn: Any
    task: Optional[str] = None
    deadline: Optional[float] = None
    task_limit: Optional[float] = None
    assigned_at: Optional[float] = None
    last_heartbeat: Optional[float] = None
    tasks_done: int = 0

    @property
    def idle(self):
        return self.task is None


def resolve_jobs(jobs):
    """Normalise a ``jobs`` request: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return max(os.cpu_count() or 1, 1)
    try:
        jobs = int(jobs)
    except (TypeError, ValueError):
        raise ValidationError(f"jobs must be an integer >= 0, got {jobs!r}")
    if jobs < 0:
        raise ValidationError(f"jobs must be >= 0 (0 = all cores), "
                              f"got {jobs}")
    return jobs


class _PoolRun:
    """One grid execution: scheduling state plus the monitor loop."""

    def __init__(self, experiments, *, jobs, max_seconds, max_retries,
                 hard_timeout, crash_retries, journal, callback,
                 shared_descriptor, base_seed, heartbeat_interval,
                 start_method, profile_memory, keep_going,
                 trace=None, trace_path=None, trace_contexts=None,
                 deadlines=None):
        from ..observability.registry import default_registry

        self.experiments = dict(experiments)
        self.jobs = jobs
        self.config = {
            "max_seconds": max_seconds,
            "max_retries": max_retries,
            "heartbeat_interval": heartbeat_interval,
            "profile_memory": profile_memory,
            "shared_descriptor": shared_descriptor,
            "trace": trace,
        }
        self.hard_timeout = hard_timeout
        #: key -> absolute monotonic deadline; a key past its deadline
        #: is killed like a hard_timeout (or failed outright while
        #: still pending), whichever bound is tighter
        self.deadlines = dict(deadlines or {})
        self.crash_retries = int(crash_retries)
        self.journal = journal
        self.callback = callback
        self.base_seed = base_seed
        self.keep_going = keep_going
        self.trace_path = trace_path
        self.trace_contexts = dict(trace_contexts or {})
        self.ctx = _pick_context(start_method)
        self.pending = deque(self.experiments)
        self.results = {}
        self.crash_counts = {}
        self.workers = {}
        self._next_slot = 0
        self.metrics = default_registry()
        #: last cumulative registry snapshot per worker slot; merged
        #: into the driver registry once, when the run winds down
        self.worker_snapshots = {}

    # -- worker lifecycle ------------------------------------------------

    def _spawn_worker(self):
        from ..observability.tracer import trace_shard_path

        slot = self._next_slot
        self._next_slot += 1
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        config = dict(self.config)
        if self.journal is not None:
            config["shard_path"] = str(self.journal.shard_path(slot))
        if self.trace_path is not None:
            config["trace_shard_path"] = str(
                trace_shard_path(self.trace_path, slot))
        process = self.ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, slot, self.experiments, config),
            daemon=True, name=f"repro-pool-{slot}",
        )
        process.start()
        child_conn.close()
        try:  # close the startup race: the child does the same first thing
            os.setpgid(process.pid, process.pid)
        except (OSError, AttributeError): # repro: noqa[RL011] - setpgid race with the child; it sets its own group first thing
            pass
        worker = _PoolWorker(slot=slot, process=process, conn=parent_conn)
        self.workers[slot] = worker
        self.metrics.counter("pool.workers.spawned").inc()
        self.metrics.gauge("pool.workers.alive").set(len(self.workers))
        logger.debug("spawned pool worker %d (pid %s)", slot, process.pid)
        return worker

    def _ensure_workers(self):
        want = min(self.jobs, len(self.pending) + self._in_flight())
        while len(self.workers) < want:
            self._spawn_worker()

    def _in_flight(self):
        return sum(1 for w in self.workers.values() if not w.idle)

    def _discard_worker(self, worker, *, kill):
        self.workers.pop(worker.slot, None)
        if kill:
            reap_process(worker.process)
        else:
            worker.process.join()
        try:
            worker.conn.close()
        except OSError: # repro: noqa[RL011] - reaping a dead worker; its pipe may already be closed
            pass

    # -- outcome plumbing ------------------------------------------------

    def _record(self, outcome, *, parent_journal):
        """Register a finished key (and journal it when parent-owned)."""
        self.results[outcome.key] = outcome
        if parent_journal and self.journal is not None:
            self.journal.record(outcome)
        logger.info("experiment %s: %s in %.3fs (pool)",
                    outcome.key, outcome.status, outcome.elapsed)
        if self.callback is not None:
            self.callback(outcome)
        if not outcome.ok and not self.keep_going and self.pending:
            logger.warning("stopping sweep dispatch after failure in %s",
                           outcome.key)
            self.pending.clear()

    def _assign(self, worker):
        key = self.pending.popleft()
        now = time.monotonic()
        key_deadline = self.deadlines.get(key)
        if key_deadline is not None and now >= key_deadline:
            # the deadline expired while the key sat in the queue: fail
            # it without burning a worker on work nobody is waiting for
            self._record_expired(key, key_deadline)
            self._update_gauges()
            return
        worker.task = key
        worker.assigned_at = now
        limits = [limit for limit in
                  (self.hard_timeout,
                   None if key_deadline is None else key_deadline - now)
                  if limit is not None]
        worker.task_limit = min(limits) if limits else None
        worker.deadline = (None if worker.task_limit is None
                           else now + worker.task_limit)
        if worker.tasks_done:
            # an idle worker pulling work beyond its first task is a
            # steal in work-stealing terms: the grid was not statically
            # partitioned, this worker outran its share
            self.metrics.counter("pool.tasks.steals").inc()
        # the remaining deadline budget also travels to the worker as a
        # cooperative bound, so a budget-aware fit stops on its own a
        # little before the parent would have to kill it
        budget = (None if key_deadline is None
                  else max(key_deadline - now, 0.0))
        worker.conn.send(("task", key, derive_seed(key, self.base_seed),
                          self.trace_contexts.get(key), budget))
        self._update_gauges()

    def _record_expired(self, key, key_deadline):
        from ..experiments.harness import ExperimentOutcome

        logger.warning("experiment %s: deadline expired %.3gs ago while "
                       "queued; not running it", key,
                       time.monotonic() - key_deadline)
        self.metrics.counter("pool.tasks.expired").inc()
        failure = worker_failure_record(
            key, status="timeout", elapsed=0.0,
            extra_context={"deadline_expired": True, "queued_only": True},
        )
        self._record(
            ExperimentOutcome(key=key, status="failed", failure=failure,
                              elapsed=0.0),
            parent_journal=True,
        )

    def _update_gauges(self):
        self.metrics.gauge("pool.queue.depth").set(len(self.pending))
        self.metrics.gauge("pool.tasks.in_flight").set(self._in_flight())

    def _handle_outcome(self, worker, key, payload, snapshot=None):
        from ..experiments.harness import ExperimentOutcome
        from ..observability.registry import LATENCY_BUCKETS

        outcome = ExperimentOutcome.from_dict(payload)
        if snapshot is not None:
            # cumulative per-worker snapshot: keep only the latest and
            # merge once at the end, never per message
            self.worker_snapshots[worker.slot] = snapshot
        worker.tasks_done += 1
        if key == worker.task:
            if worker.assigned_at is not None:
                self.metrics.histogram(
                    "pool.task.seconds", buckets=LATENCY_BUCKETS
                ).observe(time.monotonic() - worker.assigned_at)
            worker.task = None
            worker.deadline = None
            worker.task_limit = None
        self._update_gauges()
        # worker-journaled outcomes reach the main journal at consolidation
        self._record(outcome, parent_journal=False)

    def _handle_death(self, worker):
        """A worker process died; classify, reschedule or quarantine."""
        self._drain(worker)
        key = worker.task
        self._discard_worker(worker, kill=True)  # joins: exitcode is now set
        exitcode = worker.process.exitcode
        self.metrics.counter("pool.workers.respawned").inc()
        self.metrics.gauge("pool.workers.alive").set(len(self.workers))
        if key is None:
            logger.warning("idle pool worker %d died (exitcode=%s)",
                           worker.slot, exitcode)
            return
        crashes = self.crash_counts.get(key, 0) + 1
        self.crash_counts[key] = crashes
        if crashes <= self.crash_retries:
            logger.warning(
                "experiment %s crashed its worker (%d/%d); rescheduling",
                key, crashes, self.crash_retries + 1,
            )
            self.pending.append(key)
            return
        failure = worker_failure_record(
            key, status="crashed",
            elapsed=time.monotonic() - worker.assigned_at,
            exitcode=exitcode, signal_name=_signal_name(exitcode),
            hard_timeout=self.hard_timeout,
            extra_context={"crashes": crashes,
                           "quarantined": self.crash_retries > 0},
        )
        from ..experiments.harness import ExperimentOutcome

        self._record(
            ExperimentOutcome(key=key, status="failed", failure=failure,
                              elapsed=failure.elapsed),
            parent_journal=True,
        )

    def _handle_timeout(self, worker):
        key = worker.task
        limit = (self.hard_timeout if worker.task_limit is None
                 else worker.task_limit)
        elapsed = time.monotonic() - worker.assigned_at
        silence = (None if worker.last_heartbeat is None
                   else time.monotonic() - worker.last_heartbeat)
        logger.warning("experiment %s exceeded the hard deadline %.3gs; "
                       "killing worker %d", key, limit,
                       worker.slot)
        self._discard_worker(worker, kill=True)
        self.metrics.counter("pool.tasks.timeouts").inc()
        self.metrics.counter("pool.workers.respawned").inc()
        self.metrics.gauge("pool.workers.alive").set(len(self.workers))
        key_deadline = self.deadlines.get(key)
        extra = ({"deadline_expired": True}
                 if key_deadline is not None
                 and time.monotonic() >= key_deadline else None)
        failure = worker_failure_record(
            key, status="timeout", elapsed=elapsed,
            exitcode=worker.process.exitcode,
            signal_name=_signal_name(worker.process.exitcode),
            hard_timeout=limit, heartbeat_age=silence,
            extra_context=extra,
        )
        from ..experiments.harness import ExperimentOutcome

        self._record(
            ExperimentOutcome(key=key, status="failed", failure=failure,
                              elapsed=elapsed),
            parent_journal=True,
        )

    def _drain(self, worker):
        """Pull whatever the worker managed to send before dying."""
        try:
            while worker.conn.poll(0):
                self._dispatch_message(worker, worker.conn.recv())
        except (EOFError, OSError): # repro: noqa[RL011] - draining a dead worker's pipe; EOF is the expected end
            pass

    def _dispatch_message(self, worker, message):
        tag = message[0]
        if tag == "heartbeat":
            worker.last_heartbeat = time.monotonic()
        elif tag == "outcome":
            self._handle_outcome(worker, message[1], message[2],
                                 message[3] if len(message) > 3 else None)

    # -- the monitor loop ------------------------------------------------

    def run(self):
        try:
            self._loop()
        except KeyboardInterrupt:
            logger.warning("interrupt: SIGTERMing %d pool worker group(s)",
                           len(self.workers))
            self._shutdown(kill=True)
            raise
        except BaseException:
            self._shutdown(kill=True)
            raise
        finally:
            # fold the final cumulative per-worker metrics snapshots in
            # (even on interrupt: completed work should stay counted)
            for snapshot in self.worker_snapshots.values():
                self.metrics.merge(snapshot)
            self.worker_snapshots.clear()
            self.metrics.gauge("pool.workers.alive").set(len(self.workers))
        self._shutdown(kill=False)
        self.metrics.gauge("pool.workers.alive").set(len(self.workers))
        if self.journal is not None:
            self.journal.consolidate()
        return [self.results[key] for key in self.experiments
                if key in self.results]

    def _loop(self):
        while self.pending or self._in_flight():
            self._ensure_workers()
            for worker in list(self.workers.values()):
                if worker.idle and self.pending:
                    self._assign(worker)
            timeout = _POLL_SECONDS
            now = time.monotonic()
            for worker in self.workers.values():
                if worker.deadline is not None:
                    timeout = min(timeout, max(worker.deadline - now, 0.0))
            waitables = {}
            for worker in self.workers.values():
                waitables[worker.conn] = worker
                waitables[worker.process.sentinel] = worker
            if not waitables:
                continue
            ready = _mp_connection.wait(list(waitables), timeout=timeout)
            dead = {}
            for item in ready:
                worker = waitables[item]
                if item is worker.process.sentinel:
                    dead[worker.slot] = worker
                    continue
                try:
                    while worker.conn.poll(0):
                        self._dispatch_message(worker, worker.conn.recv())
                except (EOFError, OSError):
                    dead[worker.slot] = worker
            for worker in dead.values():
                if worker.slot in self.workers:
                    self._handle_death(worker)
            now = time.monotonic()
            for worker in list(self.workers.values()):
                if worker.deadline is not None and now >= worker.deadline:
                    self._handle_timeout(worker)

    def _shutdown(self, *, kill):
        for worker in list(self.workers.values()):
            if not kill:
                try:
                    worker.conn.send(("shutdown",))
                except (BrokenPipeError, OSError):
                    kill = True
            self._discard_worker(worker, kill=kill)


def run_pool(experiments, *, jobs=None, max_seconds=None, max_retries=0,
             hard_timeout=None, crash_retries=0, journal=None,
             callback=None, shared_data=None, base_seed=0,
             heartbeat_interval=1.0, start_method=None,
             profile_memory=False, keep_going=True,
             trace=None, trace_path=None, trace_contexts=None,
             deadlines=None):
    """Run an experiment grid on the fault-contained parallel pool.

    Parameters mirror ``run_experiments``; the pool always isolates
    (every experiment runs in a worker subprocess). ``jobs=None``/``0``
    uses every core. ``crash_retries`` is the per-key circuit breaker:
    a key that crashes its worker more than this many times is recorded
    as ``failed/crashed`` and never rescheduled. ``shared_data`` is a
    ``{name: ndarray}`` mapping placed in shared memory once and
    exposed to experiment bodies via :func:`shared_arrays`.

    Tracing: ``trace`` is a sweep-level trace-context dict
    (``{"trace_id": ..., "span_id": ...}``) every task's worker tracer
    joins; ``trace_contexts`` maps individual keys to their own
    contexts (a served job's request trace), which win over the sweep
    context. When either applies to a task, the worker ships its span
    records back on the outcome (``outcome.spans``) — and, when
    ``trace_path`` is set, also maintains a durable per-slot span shard
    next to it (``<stem>.worker-<slot><suffix>``, atomic
    write-then-replace like the journal shards) so spans survive a
    SIGKILLed worker or driver. Workers additionally ship a
    :class:`~repro.observability.MetricsRegistry` snapshot with every
    outcome; the driver merges the final per-worker snapshots into its
    default registry, and the monitor loop records pool-health metrics
    (``pool.queue.depth``, ``pool.tasks.in_flight``,
    ``pool.tasks.steals``, ``pool.workers.respawned``,
    ``pool.task.seconds``, ...) as it schedules.

    Returns outcomes in grid order. ``KeyboardInterrupt`` kills every
    worker process group, leaves the per-worker journal shards in place
    for resume, and propagates.
    """
    jobs = resolve_jobs(jobs)
    if jobs < 1:
        raise ValidationError("the pool needs at least one worker")
    if crash_retries < 0:
        raise ValidationError(
            f"crash_retries must be >= 0, got {crash_retries}"
        )
    if hard_timeout is not None and not float(hard_timeout) > 0:
        raise ValidationError(
            f"hard_timeout must be positive, got {hard_timeout}"
        )
    if journal is not None and not isinstance(journal, RunJournal):
        journal = RunJournal(journal)
    # per-key deadlines arrive as *remaining seconds*; pin them to the
    # monotonic clock now so time spent queued behind other keys (or
    # behind worker respawns) still counts against each deadline
    start = time.monotonic()
    abs_deadlines = {}
    for key, remaining in (deadlines or {}).items():
        if remaining is None:
            continue
        if not float(remaining) > 0:
            raise ValidationError(
                f"deadline for {key!r} must be positive, got {remaining}")
        abs_deadlines[key] = start + float(remaining)
    shared = None
    descriptor = None
    try:
        if shared_data:
            shared = SharedDataset.create(shared_data)
            descriptor = shared.descriptor()
        run = _PoolRun(
            experiments, jobs=jobs, max_seconds=max_seconds,
            max_retries=max_retries, hard_timeout=hard_timeout,
            crash_retries=crash_retries, journal=journal,
            callback=callback, shared_descriptor=descriptor,
            base_seed=base_seed, heartbeat_interval=heartbeat_interval,
            start_method=start_method, profile_memory=profile_memory,
            keep_going=keep_going, trace=trace, trace_path=trace_path,
            trace_contexts=trace_contexts, deadlines=abs_deadlines,
        )
        return run.run()
    finally:
        if shared is not None:
            shared.unlink()

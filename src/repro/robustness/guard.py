"""Budgets, retries, and structured failure records for estimator runs.

Three cooperating pieces make any ``fit`` bounded and recoverable:

* :class:`RunBudget` — a wall-clock / iteration budget. Iterative
  optimisers across the library call :func:`budget_tick` once per outer
  iteration; when a budget is active and spent, the tick raises
  :class:`~repro.exceptions.BudgetExceededError`, so a runaway or
  stalled optimisation stops at the next iteration boundary instead of
  running unbounded. Without an active budget a tick costs a few
  nanoseconds.
* :class:`RunFailure` / :class:`RunResult` — structured records of what
  happened: either a value or a failure with error type, message,
  traceback, elapsed time, and attempt count. Harness code stores these
  in result tables instead of letting exceptions abort a whole sweep.
* :class:`RunGuard` — the policy object tying the two together. It can
  be used three ways::

      guard = RunGuard(max_seconds=30.0, max_retries=2)

      # 1. guarded call: never raises on caught errors
      result = guard.run(estimator.fit, X)

      # 2. retry-with-reseed for stochastic optimisers: each retry
      #    clones the estimator with a bumped random_state and an
      #    exponentially enlarged budget (``backoff``)
      result = guard.fit(estimator, X)

      # 3. context manager (single attempt, captures the exception)
      with RunGuard(max_seconds=5.0) as g:
          estimator.fit(X)
      if not g.result.ok:
          print(g.result.failure)

It can also decorate a function, turning its return value into a
:class:`RunResult`::

    @RunGuard(max_seconds=5.0)
    def run_once():
        return estimator.fit(X)

``ValidationError`` is never retried — bad input stays bad under a new
seed — but it is still captured as a failure so sweeps keep going.
"""

from __future__ import annotations

import contextvars
import functools
import numbers
import time
import traceback as _tb
from dataclasses import dataclass, field
from typing import Any, Optional

from ..exceptions import BudgetExceededError, ValidationError

__all__ = [
    "RunBudget",
    "RunFailure",
    "RunResult",
    "RunGuard",
    "active_budget",
    "budget_tick",
]

_ACTIVE_BUDGET: contextvars.ContextVar = contextvars.ContextVar(
    "repro_active_budget", default=None
)


def active_budget():
    """The innermost active :class:`RunBudget`, or ``None``."""
    return _ACTIVE_BUDGET.get()


def budget_tick(n=1):
    """Cooperative budget checkpoint for iterative optimisers.

    Library optimisation loops call this once per outer iteration.
    Raises :class:`~repro.exceptions.BudgetExceededError` when the
    enclosing :class:`RunGuard` budget is spent; no-op otherwise.
    """
    budget = _ACTIVE_BUDGET.get()
    if budget is not None:
        budget.tick(n)


class RunBudget:
    """A wall-clock and/or iteration budget, checked cooperatively.

    Parameters
    ----------
    max_seconds : float or None
        Wall-clock allowance from construction time.
    max_ticks : int or None
        Allowance of :meth:`tick` calls (outer optimiser iterations).

    The budget starts running on construction; :meth:`tick` and
    :meth:`check` raise :class:`BudgetExceededError` once spent.
    """

    def __init__(self, max_seconds=None, max_ticks=None):
        if max_seconds is not None:
            max_seconds = float(max_seconds)
            if not max_seconds > 0:
                raise ValidationError(
                    f"max_seconds must be positive, got {max_seconds}"
                )
        if max_ticks is not None:
            if not isinstance(max_ticks, numbers.Integral) or max_ticks < 1:
                raise ValidationError(
                    f"max_ticks must be a positive integer, got {max_ticks!r}"
                )
            max_ticks = int(max_ticks)
        self.max_seconds = max_seconds
        self.max_ticks = max_ticks
        self.started_at = time.perf_counter()
        self.ticks = 0

    def elapsed(self):
        """Seconds since the budget started."""
        return time.perf_counter() - self.started_at

    def remaining_seconds(self):
        """Wall-clock budget left (``None`` when unbounded)."""
        if self.max_seconds is None:
            return None
        return self.max_seconds - self.elapsed()

    def exhausted(self):
        """True when either allowance is spent (does not raise)."""
        if self.max_seconds is not None and self.elapsed() > self.max_seconds:
            return True
        return self.max_ticks is not None and self.ticks > self.max_ticks

    def check(self):
        """Raise :class:`BudgetExceededError` if the wall clock is spent."""
        if self.max_seconds is not None and self.elapsed() > self.max_seconds:
            raise BudgetExceededError(
                f"wall-clock budget of {self.max_seconds:.4g}s exhausted "
                f"after {self.elapsed():.4g}s"
            )

    def tick(self, n=1):
        """Count ``n`` iterations and enforce both allowances."""
        self.ticks += n
        if self.max_ticks is not None and self.ticks > self.max_ticks:
            raise BudgetExceededError(
                f"iteration budget of {self.max_ticks} ticks exhausted"
            )
        self.check()

    def __repr__(self):
        return (f"RunBudget(max_seconds={self.max_seconds}, "
                f"max_ticks={self.max_ticks}, elapsed={self.elapsed():.3f}, "
                f"ticks={self.ticks})")


@dataclass
class RunFailure:
    """Structured record of a failed (guarded) run."""

    label: str
    error_type: str
    message: str
    traceback: str
    elapsed: float
    attempts: int
    context: dict = field(default_factory=dict)

    @classmethod
    def from_exception(cls, exc, *, label="", elapsed=0.0, attempts=1,
                       context=None):
        """Build a failure record from a caught exception."""
        return cls(
            label=str(label),
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                _tb.format_exception(type(exc), exc, exc.__traceback__)
            ),
            elapsed=float(elapsed),
            attempts=int(attempts),
            context=dict(context or {}),
        )

    def __str__(self):
        where = f"[{self.label}] " if self.label else ""
        return (f"{where}{self.error_type}: {self.message} "
                f"(attempts={self.attempts}, elapsed={self.elapsed:.2f}s)")


@dataclass
class RunResult:
    """Outcome of a guarded run: a value or a :class:`RunFailure`."""

    status: str  # "ok" | "failed"
    value: Any = None
    failure: Optional[RunFailure] = None
    elapsed: float = 0.0
    attempts: int = 1

    @property
    def ok(self):
        return self.status == "ok"

    def unwrap(self):
        """Return the value, re-raising a library error on failure."""
        if self.ok:
            return self.value
        raise RuntimeError(f"guarded run failed: {self.failure}")


class RunGuard:
    """Enforce budgets and retry policy around estimator fits.

    Parameters
    ----------
    max_seconds : float or None
        Per-attempt wall-clock budget. Retry attempt ``i`` receives
        ``max_seconds * backoff**i`` (exponential backoff on budget), so
        a stochastic optimiser that timed out gets more room under its
        new seed.
    max_ticks : int or None
        Per-attempt iteration budget (outer optimiser iterations,
        counted via :func:`budget_tick`).
    max_retries : int
        Extra attempts after the first failure. :meth:`fit` reseeds the
        estimator between attempts; :meth:`run` simply re-invokes.
    backoff : float >= 1
        Budget growth factor per retry.
    label : str
        Identifies the run in :class:`RunFailure` records.
    catch : tuple of exception types
        What to convert into failures. Defaults to ``(Exception,)`` —
        ``KeyboardInterrupt``/``SystemExit`` always propagate.

    Notes
    -----
    ``ValidationError`` and ``NotImplementedError`` are captured but
    never retried: invalid input does not become valid under a new seed.
    """

    _NO_RETRY = (ValidationError, NotImplementedError)

    def __init__(self, max_seconds=None, max_ticks=None, max_retries=0,
                 backoff=2.0, label="", catch=(Exception,)):
        if max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if not backoff >= 1.0:
            raise ValidationError(f"backoff must be >= 1, got {backoff}")
        self.max_seconds = max_seconds
        self.max_ticks = max_ticks
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.label = label
        self.catch = tuple(catch)
        self.result = None
        self._token = None
        self._entered_at = None

    # -- budgets ---------------------------------------------------------

    def _attempt_budget(self, attempt):
        """Fresh budget for attempt ``attempt`` (0-based), with backoff."""
        seconds = self.max_seconds
        if seconds is not None:
            seconds = seconds * self.backoff ** attempt
        if seconds is None and self.max_ticks is None:
            return None
        return RunBudget(max_seconds=seconds, max_ticks=self.max_ticks)

    # -- guarded execution ----------------------------------------------

    def _execute(self, attempt_fn, *, context=None):
        """Run ``attempt_fn(attempt)`` under per-attempt budgets."""
        start = time.perf_counter()
        last_exc = None
        attempts = 0
        for attempt in range(self.max_retries + 1):
            attempts = attempt + 1
            budget = self._attempt_budget(attempt)
            token = None
            if budget is not None:
                token = _ACTIVE_BUDGET.set(budget)
            try:
                value = attempt_fn(attempt)
                return RunResult(
                    status="ok", value=value,
                    elapsed=time.perf_counter() - start, attempts=attempts,
                )
            except self.catch as exc:
                last_exc = exc
                if isinstance(exc, self._NO_RETRY):
                    break
            finally:
                if token is not None:
                    _ACTIVE_BUDGET.reset(token)
        elapsed = time.perf_counter() - start
        failure = RunFailure.from_exception(
            last_exc, label=self.label, elapsed=elapsed, attempts=attempts,
            context=context,
        )
        return RunResult(status="failed", failure=failure, elapsed=elapsed,
                         attempts=attempts)

    def run(self, fn, *args, **kwargs):
        """Call ``fn(*args, **kwargs)`` guarded; return a :class:`RunResult`.

        Caught exceptions become failures instead of propagating. Plain
        retries re-invoke ``fn`` unchanged — use :meth:`fit` for the
        reseeding policy.
        """
        return self._execute(lambda attempt: fn(*args, **kwargs))

    def fit(self, estimator, *fit_args, **fit_kwargs):
        """Guarded ``estimator.fit`` with retry-with-reseed.

        The first attempt fits ``estimator`` in place. Each retry clones
        it via ``get_params`` and, when the estimator has an int-or-None
        ``random_state`` parameter, bumps the seed so the optimiser
        explores a different basin; the wall-clock budget grows by
        ``backoff`` per attempt. Returns a :class:`RunResult` whose
        value is the fitted estimator.
        """
        def attempt_fn(attempt):
            est = estimator
            if attempt > 0 and hasattr(estimator, "get_params"):
                params = estimator.get_params()
                seed = params.get("random_state", "missing")
                if seed is None or isinstance(seed, numbers.Integral):
                    params["random_state"] = (
                        (0 if seed is None else int(seed)) + attempt
                    )
                est = type(estimator)(**params)
            return est.fit(*fit_args, **fit_kwargs)

        context = {"estimator": type(estimator).__name__,
                   "params": getattr(estimator, "get_params", dict)()}
        return self._execute(attempt_fn, context=context)

    # -- decorator form --------------------------------------------------

    def __call__(self, fn):
        """Decorate ``fn`` so calls return :class:`RunResult`."""
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            return self.run(fn, *args, **kwargs)
        return wrapper

    # -- context-manager form (single attempt) ---------------------------

    def __enter__(self):
        self.result = None
        self._entered_at = time.perf_counter()
        budget = self._attempt_budget(0)
        self._token = _ACTIVE_BUDGET.set(budget) if budget is not None else None
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._token is not None:
            _ACTIVE_BUDGET.reset(self._token)
            self._token = None
        elapsed = time.perf_counter() - self._entered_at
        if exc is None:
            self.result = RunResult(status="ok", elapsed=elapsed)
            return False
        if isinstance(exc, self.catch):
            failure = RunFailure.from_exception(
                exc, label=self.label, elapsed=elapsed, attempts=1
            )
            self.result = RunResult(status="failed", failure=failure,
                                    elapsed=elapsed)
            return True
        return False

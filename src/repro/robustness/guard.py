"""Budgets, retries, and structured failure records for estimator runs.

Three cooperating pieces make any ``fit`` bounded and recoverable:

* :class:`RunBudget` — a wall-clock / iteration budget. Iterative
  optimisers across the library call :func:`budget_tick` once per outer
  iteration; when a budget is active and spent, the tick raises
  :class:`~repro.exceptions.BudgetExceededError`, so a runaway or
  stalled optimisation stops at the next iteration boundary instead of
  running unbounded. Without an active budget a tick costs a few
  nanoseconds.
* :class:`RunFailure` / :class:`RunResult` — structured records of what
  happened: either a value or a failure with error type, message,
  traceback, elapsed time, and attempt count. Harness code stores these
  in result tables instead of letting exceptions abort a whole sweep.
* :class:`RunGuard` — the policy object tying the two together. It can
  be used three ways::

      guard = RunGuard(max_seconds=30.0, max_retries=2)

      # 1. guarded call: never raises on caught errors
      result = guard.run(estimator.fit, X)

      # 2. retry-with-reseed for stochastic optimisers: each retry
      #    clones the estimator with a bumped random_state and an
      #    exponentially enlarged budget (``backoff``)
      result = guard.fit(estimator, X)

      # 3. context manager (single attempt, captures the exception)
      with RunGuard(max_seconds=5.0) as g:
          estimator.fit(X)
      if not g.result.ok:
          print(g.result.failure)

It can also decorate a function, turning its return value into a
:class:`RunResult`::

    @RunGuard(max_seconds=5.0)
    def run_once():
        return estimator.fit(X)

``ValidationError`` is never retried — bad input stays bad under a new
seed — but it is still captured as a failure so sweeps keep going.
"""

from __future__ import annotations

import contextvars
import functools
import numbers
import time
import traceback as _tb
from dataclasses import dataclass, field
from typing import Any, Optional

from ..exceptions import BudgetExceededError, MultiClustError, ValidationError
from ..observability.logs import get_logger
from ..observability.telemetry import emit_objective
from ..observability.tracer import _ACTIVE_TRACER

__all__ = [
    "KNOWN_FAILURE_KINDS",
    "RunBudget",
    "RunFailure",
    "RunResult",
    "RunGuard",
    "active_budget",
    "budget_tick",
]

#: Every ``RunFailure.kind`` the run layer can produce. ``"error"`` is a
#: Python exception caught in-process; ``"timeout"`` and ``"crashed"``
#: are parent-side verdicts about a killed or dead worker process —
#: produced by both the serial isolation path
#: (:mod:`repro.robustness.workers`) and the parallel pool
#: (:mod:`repro.robustness.pool`), which additionally marks a
#: repeatedly-crashing key with ``context["quarantined"]``.
#: ``tools/check_outcome_schema.py`` asserts each kind survives the
#: journal round-trip and is rendered.
KNOWN_FAILURE_KINDS = ("error", "timeout", "crashed")

logger = get_logger("repro.robustness")

_ACTIVE_BUDGET: contextvars.ContextVar = contextvars.ContextVar(
    "repro_active_budget", default=None
)


def active_budget():
    """The innermost active :class:`RunBudget`, or ``None``."""
    return _ACTIVE_BUDGET.get()


def _span_summary(span):
    """(timings, telemetry) for a closed attempt span; (None, None) w/o one.

    ``timings`` maps each direct-child stage name to inclusive seconds
    (same-name children summed); ``telemetry`` holds iteration ticks,
    descendant span count, elapsed seconds, and peak memory when the
    tracer profiled it.
    """
    if span is None:
        return None, None
    timings = {}
    for child in span.children:
        if child.duration is not None:
            timings[child.name] = timings.get(child.name, 0.0) + child.duration

    def n_spans(s):
        return 1 + sum(n_spans(c) for c in s.children)

    telemetry = {
        "ticks": span.total_ticks(),
        "spans": n_spans(span) - 1,
        "elapsed": span.duration,
    }
    if span.peak_bytes is not None:
        telemetry["peak_kb"] = round(span.peak_bytes / 1024.0, 1)
    return (timings or None), telemetry


def _json_safe_context(obj):
    """Coerce a failure context to JSON-serialisable values."""
    if isinstance(obj, dict):
        return {str(k): _json_safe_context(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe_context(v) for v in obj]
    if isinstance(obj, (str, bool)) or obj is None:
        return obj
    if isinstance(obj, numbers.Integral):
        return int(obj)
    if isinstance(obj, numbers.Real):
        return float(obj)
    return repr(obj)


def budget_tick(n=1, objective=None):
    """Cooperative budget/telemetry checkpoint for iterative optimisers.

    Library optimisation loops call this once per outer iteration.
    Raises :class:`~repro.exceptions.BudgetExceededError` when the
    enclosing :class:`RunGuard` budget is spent; no-op otherwise.

    ``objective`` is the loop's current objective value. When given it
    is forwarded to the observability layer
    (:func:`repro.observability.emit_objective`), feeding the
    ``convergence_trace_`` of the estimator being fitted — the same call
    site serves budgets, convergence telemetry, and tracer iteration
    counts. With everything disabled a tick costs three ``ContextVar``
    reads.
    """
    budget = _ACTIVE_BUDGET.get()
    if budget is not None:
        budget.tick(n)
    if objective is not None:
        emit_objective(objective)
    tracer = _ACTIVE_TRACER.get()
    if tracer is not None:
        tracer.add_ticks(n)


class RunBudget:
    """A wall-clock and/or iteration budget, checked cooperatively.

    Parameters
    ----------
    max_seconds : float or None
        Wall-clock allowance from construction time.
    max_ticks : int or None
        Allowance of :meth:`tick` calls (outer optimiser iterations).

    The budget starts running on construction; :meth:`tick` and
    :meth:`check` raise :class:`BudgetExceededError` once spent.
    """

    def __init__(self, max_seconds=None, max_ticks=None):
        if max_seconds is not None:
            max_seconds = float(max_seconds)
            if not max_seconds > 0:
                raise ValidationError(
                    f"max_seconds must be positive, got {max_seconds}"
                )
        if max_ticks is not None:
            if not isinstance(max_ticks, numbers.Integral) or max_ticks < 1:
                raise ValidationError(
                    f"max_ticks must be a positive integer, got {max_ticks!r}"
                )
            max_ticks = int(max_ticks)
        self.max_seconds = max_seconds
        self.max_ticks = max_ticks
        self.started_at = time.perf_counter()
        self.ticks = 0

    def elapsed(self):
        """Seconds since the budget started."""
        return time.perf_counter() - self.started_at

    def remaining_seconds(self):
        """Wall-clock budget left (``None`` when unbounded)."""
        if self.max_seconds is None:
            return None
        return self.max_seconds - self.elapsed()

    def exhausted(self):
        """True when either allowance is spent (does not raise)."""
        if self.max_seconds is not None and self.elapsed() > self.max_seconds:
            return True
        return self.max_ticks is not None and self.ticks > self.max_ticks

    def check(self):
        """Raise :class:`BudgetExceededError` if the wall clock is spent."""
        if self.max_seconds is not None and self.elapsed() > self.max_seconds:
            raise BudgetExceededError(
                f"wall-clock budget of {self.max_seconds:.4g}s exhausted "
                f"after {self.elapsed():.4g}s"
            )

    def tick(self, n=1):
        """Count ``n`` iterations and enforce both allowances."""
        self.ticks += n
        if self.max_ticks is not None and self.ticks > self.max_ticks:
            raise BudgetExceededError(
                f"iteration budget of {self.max_ticks} ticks exhausted"
            )
        self.check()

    def __repr__(self):
        return (f"RunBudget(max_seconds={self.max_seconds}, "
                f"max_ticks={self.max_ticks}, elapsed={self.elapsed():.3f}, "
                f"ticks={self.ticks})")


@dataclass
class RunFailure:
    """Structured record of a failed (guarded) run.

    ``kind`` classifies how the failure was observed: ``"error"`` for an
    exception caught in-process, ``"timeout"`` for a worker killed at
    its hard wall-clock deadline, ``"crashed"`` for a worker process
    that died (nonzero exit or signal). See :data:`KNOWN_FAILURE_KINDS`.
    """

    label: str
    error_type: str
    message: str
    traceback: str
    elapsed: float
    attempts: int
    context: dict = field(default_factory=dict)
    kind: str = "error"

    @classmethod
    def from_exception(cls, exc, *, label="", elapsed=0.0, attempts=1,
                       context=None):
        """Build a failure record from a caught exception."""
        return cls(
            label=str(label),
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                _tb.format_exception(type(exc), exc, exc.__traceback__)
            ),
            elapsed=float(elapsed),
            attempts=int(attempts),
            context=dict(context or {}),
        )

    def to_dict(self):
        """JSON-serialisable dict (journal / worker-pipe schema)."""
        return {
            "label": self.label,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "elapsed": self.elapsed,
            "attempts": self.attempts,
            "context": _json_safe_context(self.context),
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        if not isinstance(data, dict):
            raise ValidationError(
                f"RunFailure record must be a dict, got {type(data).__name__}"
            )
        kind = str(data.get("kind", "error"))
        if kind not in KNOWN_FAILURE_KINDS:
            raise ValidationError(
                f"unknown RunFailure kind {kind!r}; "
                f"expected one of {KNOWN_FAILURE_KINDS}"
            )
        return cls(
            label=str(data.get("label", "")),
            error_type=str(data.get("error_type", "Exception")),
            message=str(data.get("message", "")),
            traceback=str(data.get("traceback", "")),
            elapsed=float(data.get("elapsed", 0.0)),
            attempts=int(data.get("attempts", 1)),
            context=dict(data.get("context") or {}),
            kind=kind,
        )

    def __str__(self):
        where = f"[{self.label}] " if self.label else ""
        how = f"{self.kind}: " if self.kind != "error" else ""
        mark = " [quarantined]" if self.context.get("quarantined") else ""
        return (f"{where}{how}{self.error_type}: {self.message} "
                f"(attempts={self.attempts}, elapsed={self.elapsed:.2f}s)"
                f"{mark}")

    def __repr__(self):
        message = self.message
        if len(message) > 60:
            message = message[:57] + "..."
        label = f"label={self.label!r}, " if self.label else ""
        kind = f"kind={self.kind!r}, " if self.kind != "error" else ""
        return (f"RunFailure({label}{kind}{self.error_type}: {message!r}, "
                f"attempts={self.attempts}, elapsed={self.elapsed:.2f}s)")


@dataclass
class RunResult:
    """Outcome of a guarded run: a value or a :class:`RunFailure`.

    ``timings`` and ``telemetry`` are populated when the guard ran under
    a :class:`~repro.observability.Tracer` (see :class:`RunGuard`):
    ``timings`` maps child-stage names to inclusive seconds, and
    ``telemetry`` summarises iteration ticks / span counts / peak memory
    of the run.
    """

    status: str  # "ok" | "failed"
    value: Any = None
    failure: Optional[RunFailure] = None
    elapsed: float = 0.0
    attempts: int = 1
    timings: Optional[dict] = None
    telemetry: Optional[dict] = None

    @property
    def ok(self):
        return self.status == "ok"

    def unwrap(self):
        """Return the value, re-raising a library error on failure."""
        if self.ok:
            return self.value
        raise MultiClustError(f"guarded run failed: {self.failure}")

    def __repr__(self):
        if self.ok:
            body = f"ok, value={type(self.value).__name__}"
        else:
            body = f"failed, {self.failure!r}"
        extra = ""
        if self.telemetry:
            ticks = self.telemetry.get("ticks")
            if ticks is not None:
                extra = f", ticks={ticks}"
        return (f"RunResult({body}, elapsed={self.elapsed:.2f}s, "
                f"attempts={self.attempts}{extra})")


class RunGuard:
    """Enforce budgets and retry policy around estimator fits.

    Parameters
    ----------
    max_seconds : float or None
        Per-attempt wall-clock budget. Retry attempt ``i`` receives
        ``max_seconds * backoff**i`` (exponential backoff on budget), so
        a stochastic optimiser that timed out gets more room under its
        new seed.
    max_ticks : int or None
        Per-attempt iteration budget (outer optimiser iterations,
        counted via :func:`budget_tick`).
    max_retries : int
        Extra attempts after the first failure. :meth:`fit` reseeds the
        estimator between attempts; :meth:`run` simply re-invokes.
    backoff : float >= 1
        Budget growth factor per retry.
    label : str
        Identifies the run in :class:`RunFailure` records.
    catch : tuple of exception types
        What to convert into failures. Defaults to ``(Exception,)`` —
        ``KeyboardInterrupt``/``SystemExit`` always propagate.
    tracer : :class:`repro.observability.Tracer` or None
        When given, every attempt runs inside a span named after
        ``label`` (attempt number in the span attrs) and the returned
        :class:`RunResult` carries per-stage ``timings`` and a
        ``telemetry`` summary (iteration ticks, span count, peak
        memory).

    Notes
    -----
    ``ValidationError`` and ``NotImplementedError`` are captured but
    never retried: invalid input does not become valid under a new seed.
    """

    _NO_RETRY = (ValidationError, NotImplementedError)

    def __init__(self, max_seconds=None, max_ticks=None, max_retries=0,
                 backoff=2.0, label="", catch=(Exception,), tracer=None):
        if max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if not backoff >= 1.0:
            raise ValidationError(f"backoff must be >= 1, got {backoff}")
        self.max_seconds = max_seconds
        self.max_ticks = max_ticks
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.label = label
        self.catch = tuple(catch)
        self.tracer = tracer
        self.result = None
        self._token = None
        self._entered_at = None

    # -- budgets ---------------------------------------------------------

    def _attempt_budget(self, attempt):
        """Fresh budget for attempt ``attempt`` (0-based), with backoff."""
        seconds = self.max_seconds
        if seconds is not None:
            seconds = seconds * self.backoff ** attempt
        if seconds is None and self.max_ticks is None:
            return None
        return RunBudget(max_seconds=seconds, max_ticks=self.max_ticks)

    # -- guarded execution ----------------------------------------------

    def _execute(self, attempt_fn, *, context=None):
        """Run ``attempt_fn(attempt)`` under per-attempt budgets."""
        tracer = self.tracer
        if tracer is not None and _ACTIVE_TRACER.get() is not tracer:
            with tracer:
                return self._execute_attempts(attempt_fn, context=context)
        return self._execute_attempts(attempt_fn, context=context)

    def _execute_attempts(self, attempt_fn, *, context=None):
        start = time.perf_counter()
        last_exc = None
        attempts = 0
        span = None
        for attempt in range(self.max_retries + 1):
            attempts = attempt + 1
            budget = self._attempt_budget(attempt)
            token = None
            if budget is not None:
                token = _ACTIVE_BUDGET.set(budget)
            try:
                if self.tracer is not None:
                    with self.tracer.span(self.label or "guarded_run",
                                          attempt=attempt) as span:
                        value = attempt_fn(attempt)
                else:
                    value = attempt_fn(attempt)
                timings, telemetry = _span_summary(span)
                return RunResult(
                    status="ok", value=value,
                    elapsed=time.perf_counter() - start, attempts=attempts,
                    timings=timings, telemetry=telemetry,
                )
            except self.catch as exc:
                last_exc = exc
                if isinstance(exc, self._NO_RETRY):
                    logger.debug(
                        "%s: %s is not retryable, giving up",
                        self.label or "guarded run", type(exc).__name__,
                    )
                    break
                if attempt < self.max_retries:
                    logger.debug(
                        "%s: attempt %d/%d failed (%s: %s), retrying",
                        self.label or "guarded run", attempts,
                        self.max_retries + 1, type(exc).__name__, exc,
                    )
            finally:
                if token is not None:
                    _ACTIVE_BUDGET.reset(token)
        elapsed = time.perf_counter() - start
        failure = RunFailure.from_exception(
            last_exc, label=self.label, elapsed=elapsed, attempts=attempts,
            context=context,
        )
        logger.debug("%s: failed after %d attempt(s): %s",
                     self.label or "guarded run", attempts, failure)
        timings, telemetry = _span_summary(span)
        return RunResult(status="failed", failure=failure, elapsed=elapsed,
                         attempts=attempts, timings=timings,
                         telemetry=telemetry)

    def run(self, fn, *args, **kwargs):
        """Call ``fn(*args, **kwargs)`` guarded; return a :class:`RunResult`.

        Caught exceptions become failures instead of propagating. Plain
        retries re-invoke ``fn`` unchanged — use :meth:`fit` for the
        reseeding policy.
        """
        return self._execute(lambda attempt: fn(*args, **kwargs))

    def fit(self, estimator, *fit_args, **fit_kwargs):
        """Guarded ``estimator.fit`` with retry-with-reseed.

        The first attempt fits ``estimator`` in place. Each retry clones
        it via ``get_params`` and, when the estimator has an int-or-None
        ``random_state`` parameter, bumps the seed so the optimiser
        explores a different basin; the wall-clock budget grows by
        ``backoff`` per attempt. Returns a :class:`RunResult` whose
        value is the fitted estimator.
        """
        def attempt_fn(attempt):
            est = estimator
            if attempt > 0 and hasattr(estimator, "get_params"):
                params = estimator.get_params()
                seed = params.get("random_state", "missing")
                if seed is None or isinstance(seed, numbers.Integral):
                    params["random_state"] = (
                        (0 if seed is None else int(seed)) + attempt
                    )
                est = type(estimator)(**params)
            return est.fit(*fit_args, **fit_kwargs)

        context = {"estimator": type(estimator).__name__,
                   "params": getattr(estimator, "get_params", dict)()}
        return self._execute(attempt_fn, context=context)

    # -- decorator form --------------------------------------------------

    def __call__(self, fn):
        """Decorate ``fn`` so calls return :class:`RunResult`."""
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            return self.run(fn, *args, **kwargs)
        return wrapper

    # -- context-manager form (single attempt) ---------------------------

    def __enter__(self):
        self.result = None
        self._entered_at = time.perf_counter()
        budget = self._attempt_budget(0)
        self._token = _ACTIVE_BUDGET.set(budget) if budget is not None else None
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._token is not None:
            _ACTIVE_BUDGET.reset(self._token)
            self._token = None
        elapsed = time.perf_counter() - self._entered_at
        if exc is None:
            self.result = RunResult(status="ok", elapsed=elapsed)
            return False
        if isinstance(exc, self.catch):
            failure = RunFailure.from_exception(
                exc, label=self.label, elapsed=elapsed, attempts=1
            )
            self.result = RunResult(status="failed", failure=failure,
                                    elapsed=elapsed)
            return True
        return False

"""Fault injection for robustness testing.

Two families of faults:

* **Data faults** — pure functions that corrupt a clean data matrix in a
  controlled way (NaN/Inf cells, constant features, duplicate rows,
  collapsing everything to a single point). :data:`DATA_FAULTS` is the
  registry the fault-injection test suite parametrises over, and
  :func:`faulty_variants` yields every corrupted copy of a matrix.
* **Estimator faults** — wrappers simulating misbehaving optimisers:
  :class:`StallingEstimator` spins without progress (tripping a
  :class:`~repro.robustness.RunBudget`), :class:`FlakyEstimator` fails
  deterministically until its ``random_state`` has been bumped enough
  times (exercising the retry-with-reseed policy of
  :class:`~repro.robustness.RunGuard`).
* **Hard faults** — failures that *defeat* the cooperative layer and
  can only be handled by process isolation
  (:mod:`repro.robustness.workers`): :func:`hang` spins without ever
  calling ``budget_tick`` (no budget can interrupt it; only a hard
  wall-clock kill can), :func:`hard_crash` dies by signal or bare
  ``os._exit`` the way a segfault or the OOM killer would, skipping all
  ``except`` blocks. :class:`HangingEstimator` and
  :class:`CrashingEstimator` wrap them in the estimator contract.

Every injector is deterministic given ``random_state`` so failures are
reproducible.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

from .guard import budget_tick
from ..core.base import BaseClusterer
from ..exceptions import FaultInjectedError
from ..utils.validation import check_random_state

__all__ = [
    "inject_nan_cells",
    "inject_inf_cells",
    "inject_constant_feature",
    "inject_duplicate_rows",
    "collapse_to_single_point",
    "adversarial_cluster_count",
    "faulty_variants",
    "hang",
    "hard_crash",
    "oom",
    "DATA_FAULTS",
    "StallingEstimator",
    "FlakyEstimator",
    "HangingEstimator",
    "CrashingEstimator",
]


def _as_matrix(X):
    X = np.array(X, dtype=np.float64, copy=True)
    if X.ndim != 2 or X.size == 0:
        raise FaultInjectedError("fault injection needs a non-empty 2-d matrix")
    return X


def inject_nan_cells(X, *, n_cells=1, random_state=0):
    """Overwrite ``n_cells`` random cells with NaN."""
    X = _as_matrix(X)
    rng = check_random_state(random_state)
    flat = rng.choice(X.size, size=min(int(n_cells), X.size), replace=False)
    X.ravel()[flat] = np.nan
    return X


def inject_inf_cells(X, *, n_cells=1, random_state=0):
    """Overwrite ``n_cells`` random cells with +/- infinity."""
    X = _as_matrix(X)
    rng = check_random_state(random_state)
    flat = rng.choice(X.size, size=min(int(n_cells), X.size), replace=False)
    X.ravel()[flat] = rng.choice([np.inf, -np.inf], size=flat.size)
    return X


def inject_constant_feature(X, *, feature=0, value=1.0):
    """Make one column constant (zero variance)."""
    X = _as_matrix(X)
    X[:, int(feature) % X.shape[1]] = float(value)
    return X


def inject_duplicate_rows(X, *, fraction=0.5, random_state=0):
    """Replace a fraction of rows with copies of other rows."""
    X = _as_matrix(X)
    rng = check_random_state(random_state)
    n = X.shape[0]
    n_dup = max(1, int(round(fraction * n)))
    targets = rng.choice(n, size=min(n_dup, n), replace=False)
    sources = rng.integers(n, size=targets.size)
    X[targets] = X[sources]
    return X


def collapse_to_single_point(X):
    """Every row becomes the first row (zero spread everywhere)."""
    X = _as_matrix(X)
    X[:] = X[0]
    return X


def adversarial_cluster_count(X):
    """A cluster count guaranteed to exceed the sample count."""
    return int(np.asarray(X).shape[0]) + 1


#: Registry of named data faults: name -> injector taking (X) -> X_faulty.
#: These are the degenerate-but-representable inputs every estimator must
#: survive structurally (clean success, ValidationError, or RunFailure).
DATA_FAULTS = {
    "nan_cell": lambda X: inject_nan_cells(X, n_cells=2, random_state=0),
    "inf_cell": lambda X: inject_inf_cells(X, n_cells=2, random_state=0),
    "constant_feature": lambda X: inject_constant_feature(X, feature=1),
    "duplicate_rows": lambda X: inject_duplicate_rows(X, fraction=0.5,
                                                      random_state=0),
    "single_point": collapse_to_single_point,
}


def faulty_variants(X, *, faults=None):
    """Yield ``(name, X_faulty)`` for every registered (or named) fault."""
    names = list(DATA_FAULTS) if faults is None else list(faults)
    for name in names:
        yield name, DATA_FAULTS[name](X)


class StallingEstimator(BaseClusterer):
    """Simulated optimiser stall: ``fit`` spins without making progress.

    Calls :func:`~repro.robustness.budget_tick` every poll, so under a
    :class:`~repro.robustness.RunGuard` wall-clock budget the stall is
    interrupted with ``BudgetExceededError`` almost immediately. Without
    a guard it gives up after ``stall_seconds`` (a safety valve, not a
    feature) and then fits trivially.
    """

    def __init__(self, stall_seconds=5.0, poll_seconds=0.001):
        self.stall_seconds = stall_seconds
        self.poll_seconds = poll_seconds
        self.labels_ = None
        self.n_iter_ = None

    def fit(self, X):
        X = np.asarray(X, dtype=np.float64)
        deadline = time.perf_counter() + float(self.stall_seconds)
        ticks = 0
        while time.perf_counter() < deadline:
            budget_tick()
            ticks += 1
            time.sleep(float(self.poll_seconds))
        self.labels_ = np.zeros(X.shape[0], dtype=np.int64)
        self.n_iter_ = ticks
        return self


def hang(seconds=300.0, poll_seconds=0.05):
    """Spin for ``seconds`` WITHOUT ever calling ``budget_tick``.

    This is the failure mode cooperative budgets cannot touch: a hang
    inside a tight loop (or C extension) that never reaches an
    iteration boundary. Under ``--isolate --hard-timeout`` the worker
    running it is killed at the deadline and recorded as a
    ``"timeout"`` failure; without isolation only Ctrl-C (the sleep is
    interruptible) or the ``seconds`` safety valve ends it — after
    which it raises so a drill can never be mistaken for success.
    """
    deadline = time.perf_counter() + float(seconds)
    while time.perf_counter() < deadline:
        time.sleep(float(poll_seconds))
    raise FaultInjectedError(
        f"hang injector expired after {seconds}s without being reaped "
        "(expected a hard timeout to kill this process first)"
    )


def oom(limit_mb=256, chunk_mb=8):
    """Allocate unboundedly until the process dies the way OOM kills do.

    Simulates a worker eaten by the kernel's OOM killer — the fault
    that defeats every ``except`` block and leaves no goodbye on the
    pipe. To keep the drill from taking down the *host* (a real
    unbounded allocation would swap-thrash the whole machine before the
    kernel acts), the process first caps its own address space with
    ``RLIMIT_AS`` at roughly ``limit_mb`` MiB above current usage, then
    allocates and touches memory in ``chunk_mb`` chunks until the cap
    trips, and finally delivers itself the same uncatchable ``SIGKILL``
    the OOM killer sends. Platforms without :mod:`resource` skip the
    allocation phase and go straight to the kill — the observable
    failure (death by SIGKILL mid-allocation) is identical.
    """
    try:
        import resource
    except ImportError:
        resource = None
    blocks = []
    if resource is not None:
        try:
            current = _current_vm_bytes()
            cap = current + int(limit_mb) * 1024 * 1024
            soft, hard = resource.getrlimit(resource.RLIMIT_AS)
            if hard != resource.RLIM_INFINITY:
                cap = min(cap, hard)
            resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
            chunk = int(chunk_mb) * 1024 * 1024
            while True:
                block = bytearray(chunk)
                block[::4096] = b"x" * len(block[::4096])  # touch pages
                blocks.append(block)
        except MemoryError:
            pass  # the cap tripped: now die the way the kernel would
        except (OSError, ValueError):  # repro: noqa[RL011] - rlimits unavailable; still exercise the kill signal
            pass
    del blocks
    hard_crash(signal.SIGKILL)


def _current_vm_bytes():
    """Current virtual-memory size (Linux ``/proc``; 0 elsewhere)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            pages = int(fh.read().split()[0])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError, AttributeError):
        return 0


def hard_crash(signum=signal.SIGKILL):
    """Kill the current process the way a segfault would.

    Sends ``signum`` to ``os.getpid()`` (default ``SIGKILL`` — cannot
    be caught, blocked, or cleaned up after), falling back to a bare
    ``os._exit(137)`` should the signal somehow not dispatch. No
    ``except`` block, ``finally``, or atexit handler runs: the only
    layer that can turn this into a structured failure is the parent of
    an isolated worker.
    """
    os.kill(os.getpid(), signum)
    os._exit(137)  # unreachable unless the signal was blocked


class HangingEstimator(BaseClusterer):
    """Simulated hard hang: ``fit`` never reaches a ``budget_tick``.

    Unlike :class:`StallingEstimator` (which cooperates and is stopped
    by a :class:`~repro.robustness.RunBudget`), this estimator models
    the adversarial case — stuck inside an inner loop — and is only
    recoverable by the hard-timeout kill of an isolated worker.
    """

    def __init__(self, hang_seconds=300.0, poll_seconds=0.05):
        self.hang_seconds = hang_seconds
        self.poll_seconds = poll_seconds
        self.labels_ = None

    def fit(self, X):
        X = np.asarray(X, dtype=np.float64)
        hang(self.hang_seconds, self.poll_seconds)
        return self  # unreachable: hang() raises at the safety valve


class CrashingEstimator(BaseClusterer):
    """Simulated hard crash: ``fit`` kills its own process.

    Models a segfault / OOM-kill inside native code. Only meaningful
    under process isolation, where the parent records a ``"crashed"``
    failure; calling ``fit`` in-process terminates the interpreter.
    """

    def __init__(self, signum=signal.SIGKILL):
        self.signum = signum
        self.labels_ = None

    def fit(self, X):
        X = np.asarray(X, dtype=np.float64)
        hard_crash(self.signum)
        return self  # unreachable


class FlakyEstimator(BaseClusterer):
    """Fails deterministically until reseeded ``n_failures`` times.

    ``fit`` raises :class:`~repro.exceptions.FaultInjectedError` while
    ``random_state < seed0 + n_failures``. :meth:`RunGuard.fit
    <repro.robustness.RunGuard.fit>` bumps ``random_state`` by one per
    retry, so a guard with ``max_retries >= n_failures`` succeeds on the
    attempt whose seed crosses the threshold — a deterministic stand-in
    for a stochastic optimiser that only converges under some seeds.
    """

    def __init__(self, n_failures=1, random_state=0):
        self.n_failures = n_failures
        self.random_state = random_state
        self.labels_ = None

    def fit(self, X):
        X = np.asarray(X, dtype=np.float64)
        seed = 0 if self.random_state is None else int(self.random_state)
        if seed < int(self.n_failures):
            raise FaultInjectedError(
                f"injected failure (seed {seed} < {self.n_failures})"
            )
        self.labels_ = np.zeros(X.shape[0], dtype=np.int64)
        return self

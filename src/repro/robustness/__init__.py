"""Fault-tolerant run layer: budgets, retries, graceful degradation.

A production multi-clustering service runs ~20 optimisers over arbitrary
user data; any one of them can hit a degenerate seed, a singular
covariance, or an empty cluster. This subsystem makes such runs
*bounded* (wall-clock / iteration budgets enforced cooperatively inside
every optimiser loop), *recoverable* (retry-with-reseed for stochastic
fits), and *observable* (structured :class:`RunFailure` records instead
of raw tracebacks). :mod:`repro.robustness.faults` provides the fault
injection used to prove every estimator fails structurally, never with
an unhandled NumPy error.

See ``docs/robustness.md`` for the full guide.
"""

from .faults import (
    DATA_FAULTS,
    FlakyEstimator,
    StallingEstimator,
    adversarial_cluster_count,
    collapse_to_single_point,
    faulty_variants,
    inject_constant_feature,
    inject_duplicate_rows,
    inject_inf_cells,
    inject_nan_cells,
)
from .guard import (
    RunBudget,
    RunFailure,
    RunGuard,
    RunResult,
    active_budget,
    budget_tick,
)

__all__ = [
    "RunBudget",
    "RunFailure",
    "RunGuard",
    "RunResult",
    "active_budget",
    "budget_tick",
    "DATA_FAULTS",
    "FlakyEstimator",
    "StallingEstimator",
    "adversarial_cluster_count",
    "collapse_to_single_point",
    "faulty_variants",
    "inject_constant_feature",
    "inject_duplicate_rows",
    "inject_inf_cells",
    "inject_nan_cells",
]

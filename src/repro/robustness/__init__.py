"""Fault-tolerant run layer: budgets, retries, graceful degradation.

A production multi-clustering service runs ~20 optimisers over arbitrary
user data; any one of them can hit a degenerate seed, a singular
covariance, or an empty cluster. This subsystem makes such runs
*bounded* (wall-clock / iteration budgets enforced cooperatively inside
every optimiser loop), *recoverable* (retry-with-reseed for stochastic
fits), and *observable* (structured :class:`RunFailure` records instead
of raw tracebacks). :mod:`repro.robustness.faults` provides the fault
injection used to prove every estimator fails structurally, never with
an unhandled NumPy error.

Three hard-enforcement modules complement the cooperative layer:
:mod:`repro.robustness.workers` runs each experiment in a killable
subprocess (its own process group) with a hard wall-clock deadline
(covering hangs and crashes that never reach a ``budget_tick``),
:mod:`repro.robustness.checkpoint` journals completed outcomes with
atomic writes so an interrupted sweep resumes without recomputation,
and :mod:`repro.robustness.pool` runs the whole grid concurrently on a
work-stealing pool of such workers (``--jobs N``) with crash
quarantine, shared-memory data passing, and per-key deterministic
seeds so parallel == serial == resumed, bit for bit.

See ``docs/robustness.md`` for the full guide.
"""

from .checkpoint import RunJournal, canonical_summary, load_journal_records
from .faults import (
    DATA_FAULTS,
    CrashingEstimator,
    FlakyEstimator,
    HangingEstimator,
    StallingEstimator,
    adversarial_cluster_count,
    collapse_to_single_point,
    faulty_variants,
    hang,
    hard_crash,
    inject_constant_feature,
    inject_duplicate_rows,
    inject_inf_cells,
    inject_nan_cells,
    oom,
)
from .guard import (
    KNOWN_FAILURE_KINDS,
    RunBudget,
    RunFailure,
    RunGuard,
    RunResult,
    active_budget,
    budget_tick,
)
from .pool import (
    SharedDataset,
    derive_seed,
    experiment_seed,
    resolve_jobs,
    run_pool,
    shared_arrays,
)
from .workers import (
    WorkerResult,
    failure_from_worker,
    reap_process,
    run_in_worker,
    worker_failure_record,
)

__all__ = [
    "KNOWN_FAILURE_KINDS",
    "RunBudget",
    "RunFailure",
    "RunGuard",
    "RunResult",
    "RunJournal",
    "SharedDataset",
    "WorkerResult",
    "active_budget",
    "budget_tick",
    "canonical_summary",
    "derive_seed",
    "experiment_seed",
    "failure_from_worker",
    "load_journal_records",
    "reap_process",
    "resolve_jobs",
    "run_in_worker",
    "run_pool",
    "shared_arrays",
    "worker_failure_record",
    "DATA_FAULTS",
    "CrashingEstimator",
    "FlakyEstimator",
    "HangingEstimator",
    "StallingEstimator",
    "adversarial_cluster_count",
    "collapse_to_single_point",
    "faulty_variants",
    "hang",
    "hard_crash",
    "inject_constant_feature",
    "inject_duplicate_rows",
    "inject_inf_cells",
    "inject_nan_cells",
    "oom",
]

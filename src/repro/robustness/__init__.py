"""Fault-tolerant run layer: budgets, retries, graceful degradation.

A production multi-clustering service runs ~20 optimisers over arbitrary
user data; any one of them can hit a degenerate seed, a singular
covariance, or an empty cluster. This subsystem makes such runs
*bounded* (wall-clock / iteration budgets enforced cooperatively inside
every optimiser loop), *recoverable* (retry-with-reseed for stochastic
fits), and *observable* (structured :class:`RunFailure` records instead
of raw tracebacks). :mod:`repro.robustness.faults` provides the fault
injection used to prove every estimator fails structurally, never with
an unhandled NumPy error.

Two hard-enforcement modules complement the cooperative layer:
:mod:`repro.robustness.workers` runs each experiment in a killable
subprocess with a hard wall-clock deadline (covering hangs and crashes
that never reach a ``budget_tick``), and
:mod:`repro.robustness.checkpoint` journals completed outcomes with
atomic writes so an interrupted sweep resumes without recomputation.

See ``docs/robustness.md`` for the full guide.
"""

from .checkpoint import RunJournal, load_journal_records
from .faults import (
    DATA_FAULTS,
    CrashingEstimator,
    FlakyEstimator,
    HangingEstimator,
    StallingEstimator,
    adversarial_cluster_count,
    collapse_to_single_point,
    faulty_variants,
    hang,
    hard_crash,
    inject_constant_feature,
    inject_duplicate_rows,
    inject_inf_cells,
    inject_nan_cells,
)
from .guard import (
    KNOWN_FAILURE_KINDS,
    RunBudget,
    RunFailure,
    RunGuard,
    RunResult,
    active_budget,
    budget_tick,
)
from .workers import WorkerResult, run_in_worker

__all__ = [
    "KNOWN_FAILURE_KINDS",
    "RunBudget",
    "RunFailure",
    "RunGuard",
    "RunResult",
    "RunJournal",
    "WorkerResult",
    "active_budget",
    "budget_tick",
    "load_journal_records",
    "run_in_worker",
    "DATA_FAULTS",
    "CrashingEstimator",
    "FlakyEstimator",
    "HangingEstimator",
    "StallingEstimator",
    "adversarial_cluster_count",
    "collapse_to_single_point",
    "faulty_variants",
    "hang",
    "hard_crash",
    "inject_constant_feature",
    "inject_duplicate_rows",
    "inject_inf_cells",
    "inject_nan_cells",
]

"""Process isolation with hard wall-clock timeouts for guarded runs.

The cooperative budgets of :mod:`repro.robustness.guard` stop a runaway
optimiser only at the next ``budget_tick`` — a hang inside a tight inner
loop, a C-level deadlock, or a segfault defeats them. This module adds
the *hard* enforcement layer: :func:`run_in_worker` executes a payload
in a ``multiprocessing`` subprocess connected to the parent by a
message pipe, and the parent

* **kills** the worker once a hard wall-clock deadline passes
  (``terminate`` then ``kill`` after a grace period) and reports
  ``status="timeout"``;
* **detects death** — nonzero exit code or signal (segfault, OOM-kill,
  an injected ``SIGKILL``) — and reports ``status="crashed"`` with the
  exit code / signal name;
* otherwise returns the payload's JSON-safe result dict
  (``status="completed"``).

The payload receives a ``heartbeat`` callable; invoking it (the harness
wires it into the tracer's iteration ticks) updates the parent's
liveness clock, so a timeout verdict can report how long the worker had
been silent before it was killed.

Every worker detaches into its **own process group** on startup, and
reaping signals the group: grandchildren spawned by the payload die
with the worker, and a terminal Ctrl-C (delivered to the foreground
group) never reaches workers directly — the parent reaps them on its
way out, so no subprocess outlives the CLI.

The default start method is ``fork`` when the platform offers it, so
closures and locally-defined experiments work; under ``spawn`` the
payload must be picklable. Results cross the process boundary as plain
dicts — see ``ExperimentOutcome.to_dict`` — never as pickled library
objects, so a crashed worker can never poison the parent.
"""

from __future__ import annotations

import multiprocessing
import os
import signal as _signal
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..exceptions import ValidationError
from ..observability.logs import get_logger
from .guard import RunFailure

__all__ = ["WorkerResult", "failure_from_worker", "reap_process",
           "run_in_worker", "worker_failure_record"]

logger = get_logger("repro.robustness.workers")

#: Seconds granted between ``terminate`` (SIGTERM) and ``kill``
#: (SIGKILL) when reaping a timed-out worker.
_KILL_GRACE = 2.0

#: Parent poll interval while waiting on the worker pipe.
_POLL_SECONDS = 0.05


@dataclass
class WorkerResult:
    """Parent-side verdict about one isolated worker run.

    ``status`` is ``"completed"`` (``value`` holds the payload's result
    dict), ``"timeout"`` (deadline passed; worker killed), or
    ``"crashed"`` (worker died before producing a result). ``detail``
    carries structured context for the non-completed cases — exit code,
    signal name, or the error the worker managed to report before dying.
    """

    status: str
    value: Any = None
    elapsed: float = 0.0
    exitcode: Optional[int] = None
    signal_name: Optional[str] = None
    last_heartbeat_age: Optional[float] = None
    detail: dict = field(default_factory=dict)

    @property
    def completed(self):
        return self.status == "completed"

    def describe(self):
        """One-line human summary of a non-completed verdict."""
        if self.status == "timeout":
            silence = (f"; silent for {self.last_heartbeat_age:.1f}s "
                       "before the kill"
                       if self.last_heartbeat_age is not None else "")
            return (f"worker exceeded its hard deadline after "
                    f"{self.elapsed:.2f}s and was killed{silence}")
        if self.status == "crashed":
            how = (f"signal {self.signal_name}" if self.signal_name
                   else f"exit code {self.exitcode}")
            reported = self.detail.get("message")
            extra = f" ({reported})" if reported else ""
            return (f"worker died with {how} after "
                    f"{self.elapsed:.2f}s{extra}")
        return f"worker completed in {self.elapsed:.2f}s"


def _signal_name(exitcode):
    """Name of the signal behind a negative exit code, else ``None``."""
    if exitcode is None or exitcode >= 0:
        return None
    try:
        return _signal.Signals(-exitcode).name
    except ValueError:
        return f"signal {-exitcode}"


def _own_process_group():
    """Detach the current process into its own process group.

    Workers call this first thing so (a) a terminal Ctrl-C — delivered
    to the *foreground* group — never reaches them directly, and (b)
    the parent can kill the worker *and every grandchild it spawned*
    with one ``killpg``. No subprocess may outlive the CLI.
    """
    try:
        os.setpgid(0, 0)
    except (OSError, AttributeError): # repro: noqa[RL011] - already a group leader, or no setpgid on this platform
        pass  # already a group leader, or the platform has no setpgid


def _child_main(conn, payload, heartbeat_interval):
    """Worker entry point: run ``payload`` and ship the result back.

    Any exception escaping the payload (the harness runs payloads under
    a RunGuard, so this means broken worker plumbing, not a failed
    experiment) is reported over the pipe before exiting nonzero.
    """
    from ..observability.registry import reset_default_registry

    _own_process_group()
    # under fork the child inherits the parent registry's contents;
    # start from zero so metrics recorded during this payload count
    # only the child's own activity when merged back
    reset_default_registry()
    last_sent = [0.0]

    def heartbeat():
        now = time.monotonic()
        if now - last_sent[0] >= heartbeat_interval:
            last_sent[0] = now
            try:
                conn.send(("heartbeat", now))
            except (BrokenPipeError, OSError): # repro: noqa[RL011] - parent already gone; the run is moot anyway
                pass  # parent already gone; the run is moot anyway

    try:
        value = payload(heartbeat)
        conn.send(("outcome", value))
        exitcode = 0
    except BaseException as exc:  # noqa: BLE001  # repro: noqa[RL004] - reports over the pipe, then exits nonzero
        try:
            conn.send(("error", {
                "error_type": type(exc).__name__,
                "message": str(exc),
            }))
        except (BrokenPipeError, OSError): # repro: noqa[RL011] - parent already gone; exit code still says nonzero
            pass
        exitcode = 1
    finally:
        conn.close()
    os._exit(exitcode)


def _pick_context(start_method):
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


def _signal_group(pid, signum):
    """Signal ``pid``'s process group, falling back to the pid alone."""
    try:
        os.killpg(pid, signum)
        return
    except (OSError, AttributeError, PermissionError): # repro: noqa[RL011] - no process group to kill; fall through to kill()
        pass
    try:
        os.kill(pid, signum)
    except OSError: # repro: noqa[RL011] - already gone
        pass  # already gone


def reap_process(process):
    """Terminate, then kill, then join a worker that must not survive.

    Signals are sent to the worker's whole *process group* (workers
    make themselves group leaders on startup), so grandchildren the
    payload spawned die with it — nothing outlives the sweep.
    """
    if not process.is_alive():
        process.join()
        # the group may still hold orphaned grandchildren; finish them
        _signal_group(process.pid, _signal.SIGKILL)
        return
    _signal_group(process.pid, _signal.SIGTERM)
    process.join(_KILL_GRACE)
    if process.is_alive():
        logger.warning("worker pid=%s ignored SIGTERM; sending SIGKILL",
                       process.pid)
        _signal_group(process.pid, _signal.SIGKILL)
        process.join()
    else:
        # the group may still hold orphaned grandchildren; finish them
        _signal_group(process.pid, _signal.SIGKILL)


def worker_failure_record(label, *, status, elapsed, exitcode=None,
                          signal_name=None, hard_timeout=None,
                          heartbeat_age=None, extra_context=None):
    """A structured :class:`RunFailure` for a killed or dead worker.

    ``status`` is ``"timeout"`` (the parent enforced a hard deadline)
    or ``"crashed"`` (the worker died on its own); both the serial
    isolation path and the parallel pool synthesize their verdicts
    through this single helper so the failure schema cannot drift
    between the two executors.
    """
    from ..exceptions import WorkerCrashError, WorkerTimeoutError

    verdict = WorkerResult(status=status, elapsed=elapsed,
                           exitcode=exitcode, signal_name=signal_name,
                           last_heartbeat_age=heartbeat_age)
    error_type = (WorkerTimeoutError.__name__ if status == "timeout"
                  else WorkerCrashError.__name__)
    context = {"exitcode": exitcode, "signal": signal_name,
               "hard_timeout": hard_timeout}
    context.update(extra_context or {})
    return RunFailure(
        label=label, error_type=error_type, message=verdict.describe(),
        traceback="", elapsed=elapsed, attempts=1, kind=status,
        context=context,
    )


def failure_from_worker(label, worker, *, hard_timeout=None):
    """:func:`worker_failure_record` from a :class:`WorkerResult`."""
    return worker_failure_record(
        label, status=worker.status, elapsed=worker.elapsed,
        exitcode=worker.exitcode, signal_name=worker.signal_name,
        hard_timeout=hard_timeout, heartbeat_age=worker.last_heartbeat_age,
        extra_context=worker.detail,
    )


def run_in_worker(payload, *, hard_timeout=None, heartbeat_interval=1.0,
                  start_method=None, label=""):
    """Run ``payload(heartbeat)`` in a subprocess under a hard deadline.

    Parameters
    ----------
    payload : callable
        Takes one argument — a zero-arg ``heartbeat`` callable it may
        invoke at progress points — and returns a JSON-serialisable
        value (the harness sends ``ExperimentOutcome.to_dict()``).
    hard_timeout : float or None
        Wall-clock seconds before the worker is killed from the
        outside. ``None`` waits indefinitely (crash detection only).
    heartbeat_interval : float
        Minimum seconds between heartbeat messages (rate limit applied
        in the child; excess calls are free).
    start_method : str or None
        ``multiprocessing`` start method; default prefers ``fork``.
    label : str
        Identifies the worker in log messages.

    Returns
    -------
    WorkerResult
        Never raises for worker-side problems; ``KeyboardInterrupt`` in
        the parent still propagates (after the worker is reaped).
    """
    if hard_timeout is not None:
        hard_timeout = float(hard_timeout)
        if not hard_timeout > 0:
            raise ValidationError(
                f"hard_timeout must be positive, got {hard_timeout}"
            )
    ctx = _pick_context(start_method)
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_child_main, args=(child_conn, payload, heartbeat_interval),
        daemon=True, name=f"repro-worker-{label or 'anon'}",
    )
    start = time.monotonic()
    process.start()
    child_conn.close()
    try:  # close the startup race: the child does the same first thing
        os.setpgid(process.pid, process.pid)
    except (OSError, AttributeError): # repro: noqa[RL011] - setpgid race with the child; it sets its own group first thing
        pass
    deadline = None if hard_timeout is None else start + hard_timeout
    last_heartbeat = None
    outcome = None
    got_outcome = False
    error_detail = {}
    timed_out = False
    try:
        while True:
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                timed_out = True
                break
            wait = _POLL_SECONDS
            if deadline is not None:
                wait = min(wait, max(deadline - now, 0.0))
            if parent_conn.poll(wait):
                try:
                    tag, value = parent_conn.recv()
                except (EOFError, OSError):
                    break  # pipe closed with no outcome: child is dead/dying
                if tag == "heartbeat":
                    last_heartbeat = time.monotonic()
                elif tag == "outcome":
                    outcome = value
                    got_outcome = True
                    break
                elif tag == "error":
                    error_detail = dict(value)
                    break
            elif not process.is_alive() and not parent_conn.poll():
                break  # died between polls and left nothing in the pipe
    finally:
        reap_process(process)
        parent_conn.close()
    elapsed = time.monotonic() - start
    heartbeat_age = (None if last_heartbeat is None
                     else elapsed - (last_heartbeat - start))
    if got_outcome:
        return WorkerResult(status="completed", value=outcome,
                            elapsed=elapsed)
    if timed_out:
        logger.warning("worker %s killed at hard deadline %.3gs",
                       label or process.name, hard_timeout)
        return WorkerResult(status="timeout", elapsed=elapsed,
                            exitcode=process.exitcode,
                            signal_name=_signal_name(process.exitcode),
                            last_heartbeat_age=heartbeat_age)
    exitcode = process.exitcode
    logger.warning("worker %s crashed (exitcode=%s)",
                   label or process.name, exitcode)
    return WorkerResult(status="crashed", elapsed=elapsed,
                        exitcode=exitcode,
                        signal_name=_signal_name(exitcode),
                        last_heartbeat_age=heartbeat_age,
                        detail=error_detail)

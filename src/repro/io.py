"""Serialisation: results and estimators to/from JSON-compatible dicts.

Round-trips the library's result currencies — label partitions
(:class:`~repro.core.Clustering`), subspace results
(:class:`~repro.core.SubspaceClustering`), experiment
:class:`~repro.experiments.ResultTable` objects — and, since the
serving layer landed, **fitted estimators**: :func:`estimator_to_dict` /
:func:`estimator_from_dict` split an estimator into its constructor
params and fitted (trailing-underscore) state, with every value routed
through the tagged :func:`encode_value` / :func:`decode_value` codec.

All emission is strict RFC 8259 JSON. ``json.dumps`` defaults to
``allow_nan=True`` and writes bare ``NaN``/``Infinity`` tokens that
strict parsers (browsers, most HTTP clients) reject; this module is the
single place that policy is fixed:

* standalone non-finite floats encode as ``{"__repro__": "float",
  "value": "NaN" | "Infinity" | "-Infinity"}``;
* non-finite entries inside float arrays encode as the bare token
  *string* (the array dtype disambiguates on decode);
* :func:`sanitize_json` / :func:`dumps` convert any stray ``nan`` to
  ``null`` and infinities to token strings, then serialise with
  ``allow_nan=False`` so a violation can never reach the wire.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import math
import types

import numpy as np

from .core.clustering import Clustering
from .core.subspace import SubspaceCluster, SubspaceClustering
from .exceptions import ValidationError
from .observability.telemetry import ConvergenceEvent

__all__ = [
    "clustering_to_dict",
    "clustering_from_dict",
    "subspace_clustering_to_dict",
    "subspace_clustering_from_dict",
    "result_table_to_dict",
    "encode_value",
    "decode_value",
    "estimator_to_dict",
    "estimator_from_dict",
    "sanitize_json",
    "dumps",
    "payload_checksum",
    "save_json",
    "load_json",
]

_KIND_CLUSTERING = "repro.Clustering"
_KIND_SUBSPACE = "repro.SubspaceClustering"
_KIND_SUBSPACE_CLUSTER = "repro.SubspaceCluster"
_KIND_TABLE = "repro.ResultTable"
_KIND_ESTIMATOR = "repro.Estimator"

#: Schema version stamped into estimator payloads; bumped on any
#: incompatible change so stale registry entries fail loudly.
ESTIMATOR_FORMAT = 1

#: Reserved key marking a tagged value in the :func:`encode_value` codec.
_TAG = "__repro__"

#: Token strings for non-finite floats (RFC JSON has no literal for them).
_NONFINITE_TOKENS = {"NaN": math.nan, "Infinity": math.inf,
                     "-Infinity": -math.inf}


def _float_token(x):
    """Token string for a non-finite float."""
    if math.isnan(x):
        return "NaN"
    return "Infinity" if x > 0 else "-Infinity"


def _encode_float(x):
    """A float as itself, or a tagged token dict when non-finite."""
    x = float(x)
    if math.isfinite(x):
        return x
    return {_TAG: "float", "value": _float_token(x)}


def _decode_float(value):
    """Inverse of :func:`_encode_float` for already-untagged inputs."""
    if isinstance(value, str):
        if value not in _NONFINITE_TOKENS:
            raise ValidationError(f"unknown float token {value!r}")
        return _NONFINITE_TOKENS[value]
    return float(value)


def clustering_to_dict(clustering):
    """Serialise a :class:`Clustering` (or raw label vector)."""
    if not isinstance(clustering, Clustering):
        clustering = Clustering(clustering)
    return {
        "kind": _KIND_CLUSTERING,
        "name": clustering.name,
        "labels": [int(v) for v in clustering.labels],
    }


def clustering_from_dict(payload):
    """Inverse of :func:`clustering_to_dict`."""
    if payload.get("kind") != _KIND_CLUSTERING:
        raise ValidationError("payload is not a serialised Clustering")
    return Clustering(np.asarray(payload["labels"], dtype=np.int64),
                      name=payload.get("name"))


def _subspace_cluster_to_dict(cluster):
    quality = cluster.quality
    return {
        "kind": _KIND_SUBSPACE_CLUSTER,
        "objects": sorted(int(o) for o in cluster.objects),
        "dims": sorted(int(d) for d in cluster.dims),
        "quality": None if quality is None else _encode_quality(quality),
    }


def _encode_quality(quality):
    quality = float(quality)
    return quality if math.isfinite(quality) else _float_token(quality)


def _subspace_cluster_from_dict(payload):
    quality = payload.get("quality")
    if quality is not None:
        quality = _decode_float(quality)
    return SubspaceCluster(payload["objects"], payload["dims"],
                           quality=quality)


def subspace_clustering_to_dict(result):
    """Serialise a :class:`SubspaceClustering`."""
    if not isinstance(result, SubspaceClustering):
        result = SubspaceClustering(result)
    return {
        "kind": _KIND_SUBSPACE,
        "name": result.name,
        "clusters": [_subspace_cluster_to_dict(c) for c in result],
    }


def subspace_clustering_from_dict(payload):
    """Inverse of :func:`subspace_clustering_to_dict`."""
    if payload.get("kind") != _KIND_SUBSPACE:
        raise ValidationError("payload is not a serialised SubspaceClustering")
    clusters = [_subspace_cluster_from_dict(c) for c in payload["clusters"]]
    return SubspaceClustering(clusters, name=payload.get("name"))


def result_table_to_dict(table):
    """Serialise a :class:`~repro.experiments.ResultTable` (one-way:
    tables are reports, not inputs)."""
    return {
        "kind": _KIND_TABLE,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [dict(r) for r in table.rows],
    }


# ---------------------------------------------------------------------------
# Tagged value codec
# ---------------------------------------------------------------------------

def _encode_ndarray(array):
    kind = array.dtype.kind
    flat = array.ravel(order="C").tolist()
    if kind == "f":
        data = [x if math.isfinite(x) else _float_token(x) for x in flat]
    elif kind in "iub" or kind == "U":
        data = flat
    else:
        raise ValidationError(
            f"cannot serialise ndarray of dtype {array.dtype!s}")
    return {
        _TAG: "ndarray",
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": data,
    }


def _decode_ndarray(payload):
    dtype = np.dtype(payload["dtype"])
    data = payload["data"]
    if dtype.kind == "f":
        data = [_decode_float(x) if isinstance(x, str) else x for x in data]
    array = np.asarray(data, dtype=dtype).reshape(tuple(payload["shape"]))
    return array


def _sort_key(encoded):
    return json.dumps(encoded, sort_keys=True, allow_nan=False)


def _is_repro_estimator(value):
    module = getattr(type(value), "__module__", "") or ""
    return (hasattr(value, "get_params")
            and hasattr(value, "fit")
            and (module == "repro" or module.startswith("repro.")))


def encode_value(value):
    """Encode an arbitrary library value into strict-JSON-safe form.

    Supports the closed set of types observed in fitted estimator state:
    JSON scalars, non-finite floats (tagged), numpy scalars and arrays,
    tuples, sets, dicts with arbitrary hashable keys, convergence
    events, :class:`Clustering` / :class:`SubspaceCluster` /
    :class:`SubspaceClustering`, module-level ``repro.*`` functions, and
    nested fitted ``repro`` estimators. Anything else raises
    :class:`ValidationError`.
    """
    if value is None or isinstance(value, (bool, np.bool_)):
        return None if value is None else bool(value)
    if isinstance(value, str):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return _encode_float(value)
    if isinstance(value, np.ndarray):
        return _encode_ndarray(value)
    if isinstance(value, ConvergenceEvent):
        return {
            _TAG: "convergence_event",
            "iteration": int(value.iteration),
            "objective": _encode_float(value.objective),
            "delta": _encode_float(value.delta),
        }
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        items = sorted((encode_value(v) for v in value), key=_sort_key)
        tag = "frozenset" if isinstance(value, frozenset) else "set"
        return {_TAG: tag, "items": items}
    if isinstance(value, dict):
        return {
            _TAG: "dict",
            "items": [[encode_value(k), encode_value(v)]
                      for k, v in value.items()],
        }
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, Clustering):
        return clustering_to_dict(value)
    if isinstance(value, SubspaceCluster):
        return _subspace_cluster_to_dict(value)
    if isinstance(value, SubspaceClustering):
        return subspace_clustering_to_dict(value)
    if isinstance(value, types.FunctionType):
        module = value.__module__ or ""
        if not (module == "repro" or module.startswith("repro.")):
            raise ValidationError(
                f"can only serialise repro.* functions, got {module}."
                f"{value.__qualname__}")
        return {_TAG: "function", "module": module,
                "qualname": value.__qualname__}
    if _is_repro_estimator(value):
        return estimator_to_dict(value)
    cls = type(value)
    module = cls.__module__ or ""
    if ((module == "repro" or module.startswith("repro."))
            and hasattr(value, "__dict__")):
        # last resort for plain helper objects (e.g. a named threshold
        # callable stored by a fitted estimator): class path + state
        return {
            _TAG: "object",
            "module": module,
            "qualname": cls.__qualname__,
            "state": [[name, encode_value(v)]
                      for name, v in vars(value).items()],
        }
    raise ValidationError(
        f"don't know how to encode {cls.__name__!s} for JSON")


_TAG_DECODERS = {}


def _tag_decoder(name):
    def deco(fn):
        _TAG_DECODERS[name] = fn
        return fn
    return deco


@_tag_decoder("float")
def _dec_float(payload):
    return _decode_float(payload["value"])


@_tag_decoder("ndarray")
def _dec_ndarray(payload):
    return _decode_ndarray(payload)


@_tag_decoder("tuple")
def _dec_tuple(payload):
    return tuple(decode_value(v) for v in payload["items"])


@_tag_decoder("set")
def _dec_set(payload):
    return set(decode_value(v) for v in payload["items"])


@_tag_decoder("frozenset")
def _dec_frozenset(payload):
    return frozenset(decode_value(v) for v in payload["items"])


@_tag_decoder("dict")
def _dec_dict(payload):
    return {decode_value(k): decode_value(v) for k, v in payload["items"]}


@_tag_decoder("convergence_event")
def _dec_event(payload):
    return ConvergenceEvent(iteration=int(payload["iteration"]),
                            objective=decode_value(payload["objective"]),
                            delta=decode_value(payload["delta"]))


def _resolve_repro_attr(module_name, qualname, what):
    """Resolve ``module_name``.``qualname``, confined to the library.

    Qualname traversal must never step through a module object —
    otherwise ``repro.foo`` + ``os.system`` would walk from a repro
    module into an imported stdlib module — and the resolved target's
    own ``__module__`` must be ``repro.*`` (blocks names merely
    *imported into* a repro module, e.g. ``from x import y``).
    """
    obj = _import_repro_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None or isinstance(obj, types.ModuleType):
            raise ValidationError(
                f"cannot resolve {what} {module_name}.{qualname}")
    owner = getattr(obj, "__module__", "") or ""
    if not (owner == "repro" or owner.startswith("repro.")):
        raise ValidationError(
            f"refusing to decode {what} {module_name}.{qualname}: "
            f"it is defined in {owner or '<unknown>'!s}, not repro.*")
    return obj


@_tag_decoder("function")
def _dec_function(payload):
    obj = _resolve_repro_attr(payload["module"], payload["qualname"],
                              "function")
    if not callable(obj):
        raise ValidationError(
            f"{payload['module']}.{payload['qualname']} is not callable")
    return obj


@_tag_decoder("object")
def _dec_object(payload):
    obj = _resolve_repro_attr(payload["module"], payload["qualname"],
                              "class")
    if not isinstance(obj, type):
        raise ValidationError(
            f"{payload['module']}.{payload['qualname']} is not a class")
    instance = obj.__new__(obj)
    for name, value in payload["state"]:
        setattr(instance, name, decode_value(value))
    return instance


_KIND_DECODERS = {
    _KIND_CLUSTERING: clustering_from_dict,
    _KIND_SUBSPACE_CLUSTER: _subspace_cluster_from_dict,
    _KIND_SUBSPACE: subspace_clustering_from_dict,
}


def decode_value(payload):
    """Inverse of :func:`encode_value`."""
    if isinstance(payload, list):
        return [decode_value(v) for v in payload]
    if isinstance(payload, dict):
        tag = payload.get(_TAG)
        if tag is not None:
            decoder = _TAG_DECODERS.get(tag)
            if decoder is None:
                raise ValidationError(f"unknown value tag {tag!r}")
            return decoder(payload)
        kind = payload.get("kind")
        if kind == _KIND_ESTIMATOR:
            return estimator_from_dict(payload)
        decoder = _KIND_DECODERS.get(kind)
        if decoder is None:
            raise ValidationError(
                f"untagged dict in encoded payload (kind={kind!r}); "
                "plain dicts are encoded as tagged item lists")
        return decoder(payload)
    return payload


def _import_repro_module(module_name):
    """Import a module, refusing anything outside the library."""
    if not (module_name == "repro" or module_name.startswith("repro.")):
        raise ValidationError(
            f"refusing to import {module_name!r}: estimator payloads may "
            "only reference repro.* modules")
    return importlib.import_module(module_name)


# ---------------------------------------------------------------------------
# Fitted-estimator round-trip
# ---------------------------------------------------------------------------

def estimator_to_dict(estimator):
    """Serialise a (possibly fitted) estimator to a strict-JSON dict.

    Splits the instance into constructor ``params`` (from
    ``get_params()``) and everything else in ``vars()`` — the fitted
    state, including private helper attributes — each value going
    through :func:`encode_value`. The inverse is
    :func:`estimator_from_dict`.
    """
    cls = type(estimator)
    module = cls.__module__ or ""
    if not (module == "repro" or module.startswith("repro.")):
        raise ValidationError(
            f"can only serialise repro.* estimators, got {module}."
            f"{cls.__name__}")
    if not hasattr(estimator, "get_params"):
        raise ValidationError(
            f"{cls.__name__} has no get_params; not a library estimator")
    params = estimator.get_params()
    fitted = {name: value for name, value in vars(estimator).items()
              if name not in params}
    return {
        "kind": _KIND_ESTIMATOR,
        "format": ESTIMATOR_FORMAT,
        "module": module,
        "class": cls.__name__,
        "params": {name: encode_value(value)
                   for name, value in sorted(params.items())},
        "fitted": {name: encode_value(value)
                   for name, value in fitted.items()},
    }


def estimator_from_dict(payload):
    """Rebuild an estimator serialised by :func:`estimator_to_dict`.

    The class is resolved by import path, restricted to ``repro.*``
    modules; params go through the constructor (so validation applies),
    fitted state is restored verbatim.
    """
    if payload.get("kind") != _KIND_ESTIMATOR:
        raise ValidationError("payload is not a serialised estimator")
    if payload.get("format") != ESTIMATOR_FORMAT:
        raise ValidationError(
            f"unsupported estimator payload format "
            f"{payload.get('format')!r} (expected {ESTIMATOR_FORMAT})")
    cls = _resolve_repro_attr(payload["module"], payload["class"],
                              "estimator class")
    if not isinstance(cls, type):
        raise ValidationError(
            f"{payload['module']}.{payload['class']} is not a class")
    params = {name: decode_value(value)
              for name, value in payload["params"].items()}
    estimator = cls(**params)
    for name, value in payload["fitted"].items():
        setattr(estimator, name, decode_value(value))
    return estimator


# ---------------------------------------------------------------------------
# Strict JSON emission
# ---------------------------------------------------------------------------

def sanitize_json(obj):
    """Recursively replace non-finite floats in a JSON-ready structure.

    ``nan`` becomes ``None`` (JSON ``null``); infinities become the
    token strings ``"Infinity"`` / ``"-Infinity"``; tuples become lists.
    Other values pass through untouched.
    """
    if isinstance(obj, float):
        if math.isfinite(obj):
            return obj
        return None if math.isnan(obj) else _float_token(obj)
    if isinstance(obj, dict):
        return {k: sanitize_json(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [sanitize_json(v) for v in obj]
    return obj


def dumps(obj, **kwargs):
    """Strict-RFC ``json.dumps``: sanitises non-finite floats first and
    serialises with ``allow_nan=False`` so bare ``NaN`` tokens can never
    be emitted."""
    kwargs.setdefault("allow_nan", False)
    return json.dumps(sanitize_json(obj), **kwargs)


def payload_checksum(payload):
    """sha256 hex over a payload's canonical (sorted-key strict-JSON)
    bytes.

    The in-band integrity checksum stored with every
    :class:`repro.serve.ModelRegistry` entry and
    :class:`repro.robustness.RunJournal` line; loads recompute it and
    quarantine anything that does not match (see ``docs/robustness.md``).
    """
    blob = dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _to_payload(obj):
    if isinstance(obj, Clustering):
        return clustering_to_dict(obj)
    if isinstance(obj, SubspaceClustering):
        return subspace_clustering_to_dict(obj)
    # duck-typed ResultTable
    if hasattr(obj, "title") and hasattr(obj, "columns") and hasattr(obj, "rows"):
        return result_table_to_dict(obj)
    if isinstance(obj, np.ndarray):
        return clustering_to_dict(obj)
    if _is_repro_estimator(obj):
        return estimator_to_dict(obj)
    raise ValidationError(
        f"don't know how to serialise {type(obj).__name__}; expected "
        "Clustering, SubspaceClustering, label array, ResultTable, or "
        "a library estimator"
    )


def save_json(obj, path):
    """Write a supported object to ``path`` as strict JSON; returns the
    path."""
    payload = _to_payload(obj)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(payload, indent=2, sort_keys=True))
        fh.write("\n")
    return path


def load_json(path):
    """Load a previously saved object (tables come back as plain dicts)."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    kind = payload.get("kind")
    if kind == _KIND_CLUSTERING:
        return clustering_from_dict(payload)
    if kind == _KIND_SUBSPACE:
        return subspace_clustering_from_dict(payload)
    if kind == _KIND_ESTIMATOR:
        return estimator_from_dict(payload)
    if kind == _KIND_TABLE:
        return payload
    raise ValidationError(f"unknown payload kind {kind!r}")

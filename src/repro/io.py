"""Serialisation: results to/from JSON-compatible dicts and files.

Round-trips the library's three result currencies — label partitions
(:class:`~repro.core.Clustering`), subspace results
(:class:`~repro.core.SubspaceClustering`), and experiment
:class:`~repro.experiments.ResultTable` objects — so pipelines can
persist intermediate solutions (e.g. mine once, run several selection
models later).
"""

from __future__ import annotations

import json

import numpy as np

from .core.clustering import Clustering
from .core.subspace import SubspaceCluster, SubspaceClustering
from .exceptions import ValidationError

__all__ = [
    "clustering_to_dict",
    "clustering_from_dict",
    "subspace_clustering_to_dict",
    "subspace_clustering_from_dict",
    "result_table_to_dict",
    "save_json",
    "load_json",
]

_KIND_CLUSTERING = "repro.Clustering"
_KIND_SUBSPACE = "repro.SubspaceClustering"
_KIND_TABLE = "repro.ResultTable"


def clustering_to_dict(clustering):
    """Serialise a :class:`Clustering` (or raw label vector)."""
    if not isinstance(clustering, Clustering):
        clustering = Clustering(clustering)
    return {
        "kind": _KIND_CLUSTERING,
        "name": clustering.name,
        "labels": [int(v) for v in clustering.labels],
    }


def clustering_from_dict(payload):
    """Inverse of :func:`clustering_to_dict`."""
    if payload.get("kind") != _KIND_CLUSTERING:
        raise ValidationError("payload is not a serialised Clustering")
    return Clustering(np.asarray(payload["labels"], dtype=np.int64),
                      name=payload.get("name"))


def subspace_clustering_to_dict(result):
    """Serialise a :class:`SubspaceClustering`."""
    if not isinstance(result, SubspaceClustering):
        result = SubspaceClustering(result)
    return {
        "kind": _KIND_SUBSPACE,
        "name": result.name,
        "clusters": [
            {
                "objects": sorted(int(o) for o in c.objects),
                "dims": sorted(int(d) for d in c.dims),
                "quality": c.quality,
            }
            for c in result
        ],
    }


def subspace_clustering_from_dict(payload):
    """Inverse of :func:`subspace_clustering_to_dict`."""
    if payload.get("kind") != _KIND_SUBSPACE:
        raise ValidationError("payload is not a serialised SubspaceClustering")
    clusters = [
        SubspaceCluster(c["objects"], c["dims"], quality=c.get("quality"))
        for c in payload["clusters"]
    ]
    return SubspaceClustering(clusters, name=payload.get("name"))


def result_table_to_dict(table):
    """Serialise a :class:`~repro.experiments.ResultTable` (one-way:
    tables are reports, not inputs)."""
    return {
        "kind": _KIND_TABLE,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [dict(r) for r in table.rows],
    }


def _to_payload(obj):
    if isinstance(obj, Clustering):
        return clustering_to_dict(obj)
    if isinstance(obj, SubspaceClustering):
        return subspace_clustering_to_dict(obj)
    # duck-typed ResultTable
    if hasattr(obj, "title") and hasattr(obj, "columns") and hasattr(obj, "rows"):
        return result_table_to_dict(obj)
    if isinstance(obj, np.ndarray):
        return clustering_to_dict(obj)
    raise ValidationError(
        f"don't know how to serialise {type(obj).__name__}; expected "
        "Clustering, SubspaceClustering, label array, or ResultTable"
    )


def save_json(obj, path):
    """Write a supported object to ``path`` as JSON; returns the path."""
    payload = _to_payload(obj)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


def load_json(path):
    """Load a previously saved object (tables come back as plain dicts)."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    kind = payload.get("kind")
    if kind == _KIND_CLUSTERING:
        return clustering_from_dict(payload)
    if kind == _KIND_SUBSPACE:
        return subspace_clustering_from_dict(payload)
    if kind == _KIND_TABLE:
        return payload
    raise ValidationError(f"unknown payload kind {kind!r}")

"""Estimator base classes.

Three estimator shapes cover the whole tutorial:

* :class:`BaseClusterer` — one data matrix in, one labeling out
  (traditional clustering; slide 3);
* :class:`AlternativeClusterer` — takes a *given* clustering and produces
  one dissimilar alternative (slide 30);
* :class:`MultiClusteringEstimator` — produces several clusterings at
  once (slide 39) or over given views.

All follow ``fit(X) -> self`` with results exposed as trailing-underscore
attributes, and support ``get_params``/``set_params`` for harness sweeps.
"""

from __future__ import annotations

import inspect

import numpy as np

from .clustering import Clustering
from ..exceptions import ValidationError
from ..utils.validation import check_array, check_is_fitted

__all__ = [
    "ParamsMixin",
    "BaseClusterer",
    "AlternativeClusterer",
    "MultiClusteringEstimator",
]


class ParamsMixin:
    """``get_params``/``set_params`` driven by the ``__init__`` signature."""

    @classmethod
    def _param_names(cls):
        sig = inspect.signature(cls.__init__)
        return [
            name
            for name, p in sig.parameters.items()
            if name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]

    def get_params(self):
        """Constructor parameters as a dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params):
        """Set constructor parameters; unknown names raise."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValidationError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def to_dict(self):
        """Serialise this estimator (params + fitted state) to a
        strict-JSON-compatible dict; see :func:`repro.io.estimator_to_dict`.
        """
        from ..io import estimator_to_dict

        return estimator_to_dict(self)

    @classmethod
    def from_dict(cls, payload):
        """Rebuild an estimator serialised by :meth:`to_dict`.

        Called on a base or concrete class; the payload names the real
        class, which must be ``cls`` or a subclass of it.
        """
        from ..io import estimator_from_dict

        estimator = estimator_from_dict(payload)
        if not isinstance(estimator, cls):
            raise ValidationError(
                f"payload decodes to {type(estimator).__name__}, "
                f"not a {cls.__name__}")
        return estimator

    def __repr__(self):
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"

    def _check_array(self, X, **kwargs):
        """:func:`check_array` with this estimator's name in messages.

        Every ``fit`` validates through this so harness logs attribute a
        rejected input to the estimator that rejected it.
        """
        kwargs.setdefault("estimator", type(self).__name__)
        return check_array(X, **kwargs)


class BaseClusterer(ParamsMixin):
    """A traditional clusterer: ``fit`` sets ``labels_``."""

    labels_ = None

    def fit(self, X):  # pragma: no cover - abstract
        raise NotImplementedError

    def fit_predict(self, X):
        """Fit and return the label vector."""
        return self.fit(X).labels_

    @property
    def clustering_(self):
        """Fitted result wrapped as a :class:`Clustering`."""
        check_is_fitted(self, "labels_")
        return Clustering(self.labels_, name=type(self).__name__)


class AlternativeClusterer(ParamsMixin):
    """Finds one clustering dissimilar to given knowledge.

    ``fit(X, given)`` sets ``labels_`` (the alternative). ``given`` may be
    a label vector, a :class:`Clustering`, or — for algorithms that accept
    several negatives (e.g. minCEntropy⁺) — a list of them.
    """

    labels_ = None

    @staticmethod
    def _given_labels(given):
        """Normalise given knowledge to a list of label arrays.

        Accepts a label vector (any 1-d array-like of ints), a
        :class:`Clustering`, or a list/tuple of either. A flat list of
        scalars is one labeling, not many.
        """
        if given is None:
            raise ValidationError("this algorithm requires a given clustering")
        if isinstance(given, Clustering):
            return [np.asarray(given.labels)]
        if isinstance(given, (list, tuple)):
            if given and all(np.isscalar(g) for g in given):
                return [np.asarray(given)]
            items = list(given)
        else:
            items = [given]
        out = []
        for g in items:
            if isinstance(g, Clustering):
                out.append(np.asarray(g.labels))
            else:
                out.append(np.asarray(g))
        if not out:
            raise ValidationError("given must contain at least one clustering")
        return out

    def fit(self, X, given):  # pragma: no cover - abstract
        raise NotImplementedError

    def fit_predict(self, X, given):
        """Fit and return the alternative label vector."""
        return self.fit(X, given).labels_

    @property
    def clustering_(self):
        check_is_fitted(self, "labels_")
        return Clustering(self.labels_, name=type(self).__name__)


class MultiClusteringEstimator(ParamsMixin):
    """Produces multiple clusterings: ``fit`` sets ``labelings_`` (list of
    label vectors, one per solution)."""

    labelings_ = None

    def fit(self, X):  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def clusterings_(self):
        """Fitted solutions as :class:`Clustering` objects."""
        check_is_fitted(self, "labelings_")
        return [
            Clustering(lab, name=f"{type(self).__name__}[{i}]")
            for i, lab in enumerate(self.labelings_)
        ]

    @property
    def n_clusterings_(self):
        check_is_fitted(self, "labelings_")
        return len(self.labelings_)

"""Core abstractions: containers, estimator bases, objectives, taxonomy.

This package carries the tutorial's actual contribution — the common
problem statement (slide 27) and the taxonomy of approaches (slides
20-22, 116) — as executable code the concrete algorithms plug into.
"""

from .base import (
    AlternativeClusterer,
    BaseClusterer,
    MultiClusteringEstimator,
    ParamsMixin,
)
from .clustering import Clustering, cross_tabulate
from .objectives import (
    MultipleClusteringObjective,
    quality_compactness,
    quality_silhouette,
)
from .pipeline import IterativeAlternativePipeline
from .subspace import SubspaceCluster, SubspaceClustering
from .taxonomy import (
    Processing,
    SearchSpace,
    TaxonomyEntry,
    all_entries,
    get_entry,
    register,
    render_table,
)

__all__ = [
    "AlternativeClusterer",
    "BaseClusterer",
    "MultiClusteringEstimator",
    "ParamsMixin",
    "Clustering",
    "cross_tabulate",
    "MultipleClusteringObjective",
    "quality_compactness",
    "quality_silhouette",
    "IterativeAlternativePipeline",
    "SubspaceCluster",
    "SubspaceClustering",
    "Processing",
    "SearchSpace",
    "TaxonomyEntry",
    "all_entries",
    "get_entry",
    "register",
    "render_table",
]

"""Subspace clustering containers.

Slide 65 of the tutorial defines the abstract subspace-clustering model:
a cluster is a pair ``C = (O, S)`` with objects ``O ⊆ DB`` and relevant
dimensions ``S ⊆ DIM``, and a result is a selection
``M = {(O_1, S_1), ..., (O_n, S_n)} ⊆ ALL``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = ["SubspaceCluster", "SubspaceClustering"]


class SubspaceCluster:
    """An immutable subspace cluster ``(O, S)``.

    Parameters
    ----------
    objects : iterable of int
        Object indices ``O``.
    dims : iterable of int
        Relevant dimension indices ``S``.
    quality : float, optional
        Algorithm-specific interestingness/quality score.
    """

    __slots__ = ("objects", "dims", "quality")

    def __init__(self, objects, dims, quality=None):
        objects = frozenset(int(o) for o in objects)
        dims = frozenset(int(d) for d in dims)
        if not objects:
            raise ValidationError("a subspace cluster needs at least one object")
        if not dims:
            raise ValidationError("a subspace cluster needs at least one dimension")
        if min(objects) < 0 or min(dims) < 0:
            raise ValidationError("object/dimension indices must be non-negative")
        object.__setattr__(self, "objects", objects)
        object.__setattr__(self, "dims", dims)
        object.__setattr__(self, "quality", None if quality is None else float(quality))

    def __setattr__(self, name, value):
        raise AttributeError("SubspaceCluster is immutable")

    @property
    def n_objects(self):
        """|O|."""
        return len(self.objects)

    @property
    def dimensionality(self):
        """|S|."""
        return len(self.dims)

    @property
    def size(self):
        """Micro-cell count |O| * |S| (used by RNIA/CE)."""
        return len(self.objects) * len(self.dims)

    def object_array(self):
        """Sorted object indices as an int array."""
        return np.fromiter(sorted(self.objects), dtype=np.int64)

    def dim_tuple(self):
        """Sorted dimension indices as a tuple."""
        return tuple(sorted(self.dims))

    def overlap_objects(self, other):
        """|O ∩ O'| with another cluster."""
        return len(self.objects & other.objects)

    def shares_subspace(self, other, beta):
        """Whether ``other``'s subspace is covered by this cluster's subspace.

        Implements ``coveredSubspaces_β`` from OSCLU (slide 82):
        ``T`` is covered by ``S`` iff ``|T ∩ S| >= β · |T|``.
        """
        T, S = other.dims, self.dims
        return len(T & S) >= beta * len(T)

    def __eq__(self, other):
        if not isinstance(other, SubspaceCluster):
            return NotImplemented
        return self.objects == other.objects and self.dims == other.dims

    def __hash__(self):
        return hash((self.objects, self.dims))

    def __repr__(self):
        q = "" if self.quality is None else f", quality={self.quality:.3g}"
        return (
            f"SubspaceCluster(|O|={self.n_objects}, S={self.dim_tuple()}{q})"
        )


class SubspaceClustering:
    """An ordered collection ``M`` of :class:`SubspaceCluster`.

    Duplicates (same objects *and* dims) are removed, preserving first
    occurrence.
    """

    def __init__(self, clusters=(), name=None):
        seen = set()
        uniq = []
        for c in clusters:
            if not isinstance(c, SubspaceCluster):
                c = SubspaceCluster(*c)
            if c not in seen:
                seen.add(c)
                uniq.append(c)
        self._clusters = tuple(uniq)
        self.name = name

    @property
    def clusters(self):
        return self._clusters

    def __len__(self):
        return len(self._clusters)

    def __iter__(self):
        return iter(self._clusters)

    def __getitem__(self, i):
        return self._clusters[i]

    def subspaces(self):
        """The distinct subspaces appearing in the result (sorted tuples)."""
        return sorted({c.dim_tuple() for c in self._clusters})

    def covered_objects(self):
        """Union of all object sets."""
        out = set()
        for c in self._clusters:
            out |= c.objects
        return out

    def group_by_subspace(self):
        """Dict subspace-tuple -> list of clusters in that exact subspace."""
        groups = {}
        for c in self._clusters:
            groups.setdefault(c.dim_tuple(), []).append(c)
        return groups

    def to_labelings(self, n_objects):
        """One label vector per distinct subspace (clusters in a subspace
        become labels; uncovered objects are noise).

        Overlapping clusters within one subspace are resolved by first-come
        priority — use only for reporting, not as a lossless conversion.
        """
        out = {}
        for subspace, clusters in self.group_by_subspace().items():
            labels = np.full(n_objects, -1, dtype=np.int64)
            for cid, c in enumerate(clusters):
                idx = c.object_array()
                unassigned = labels[idx] == -1
                labels[idx[unassigned]] = cid
            out[subspace] = labels
        return out

    def total_micro_cells(self):
        """Sum of |O|*|S| over the result — the redundancy currency."""
        return sum(c.size for c in self._clusters)

    def __repr__(self):
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"SubspaceClustering({len(self._clusters)} clusters in "
            f"{len(self.subspaces())} subspaces{tag})"
        )

"""Generic iterative multiple-clustering driver (slides 48/56).

The transformation paradigm iterates::

    DB_1 --cluster--> Clust_1 --learn transform--> DB_2 --cluster--> Clust_2 ...

Any clusterer can be plugged in because dissimilarity is ensured by the
space transformation, not by the cluster definition. This module provides
that loop once, so Davidson & Qi / Qi & Davidson / Cui et al. (and any
user-supplied transformer) share it.
"""

from __future__ import annotations

import copy
import warnings

import numpy as np

from .base import MultiClusteringEstimator
from ..exceptions import ConvergenceWarning, ValidationError
from ..metrics.partition import adjusted_rand_index
from ..observability.telemetry import (
    capture_convergence,
    emit_objective,
    record_convergence,
)
from ..observability.tracer import traced_fit
from ..robustness.guard import budget_tick
from ..utils.validation import check_array

__all__ = ["IterativeAlternativePipeline"]


class IterativeAlternativePipeline(MultiClusteringEstimator):
    """Chain a clusterer with a clustering-driven space transformer.

    Parameters
    ----------
    clusterer : BaseClusterer
        Cloned (via ``get_params``) for each round.
    transformer : object
        Must implement ``fit(X, labels) -> self`` and ``transform(X)``;
        it is (re-)fitted on each round's data and labels and produces the
        next round's data. Transformers may expose ``should_stop_``
        (bool) after ``fit`` to end the chain early (e.g. Cui et al. stop
        when the residual space is exhausted).
    n_solutions : int
        Maximum number of clusterings to produce (>= 1).
    min_dissimilarity : float
        If the new clustering's ``1 - ARI`` against *every* previous one
        falls below this, the chain stops (guards against the
        "very similar clusterings in subsequent iterations" failure mode
        of slide 62). Set to 0 to disable.

    Attributes
    ----------
    labelings_ : list of ndarray
        One label vector per produced clustering.
    transforms_ : list
        The fitted transformer of each round (``None`` for the first).
    stopped_reason_ : str
        Why the chain ended: "n_solutions", "transformer", "redundant".
        A "redundant" stop (near-duplicate clusterings in subsequent
        rounds — the slide-62 failure mode) additionally issues a
        :class:`ConvergenceWarning`.
    n_iter_ : int
        Rounds performed (= number of produced clusterings).
    convergence_trace_ : list of ConvergenceEvent
        One event per accepted round; the objective is the round's
        maximum ARI against all previous clusterings (0.0 for the first
        round). Non-monotone: redundancy against a growing set of
        solutions has no monotonicity guarantee.
    """

    def __init__(self, clusterer, transformer, n_solutions=2,
                 min_dissimilarity=0.05):
        if n_solutions < 1:
            raise ValidationError("n_solutions must be >= 1")
        self.clusterer = clusterer
        self.transformer = transformer
        self.n_solutions = int(n_solutions)
        self.min_dissimilarity = float(min_dissimilarity)
        self.labelings_ = None
        self.transforms_ = None
        self.stopped_reason_ = None
        self.n_iter_ = None
        self.convergence_trace_ = None

    def _clone_clusterer(self):
        return type(self.clusterer)(**self.clusterer.get_params())

    def _clone_transformer(self):
        return copy.deepcopy(self.transformer)

    @traced_fit
    def fit(self, X):
        X = check_array(X, min_samples=2)
        data = X
        labelings = []
        transforms = []
        reason = "n_solutions"
        with capture_convergence() as capture:
            for _ in range(self.n_solutions):
                budget_tick()
                labels = self._clone_clusterer().fit(data).labels_
                labels = np.asarray(labels)
                sims = [adjusted_rand_index(labels, prev)
                        for prev in labelings]
                if (labelings and self.min_dissimilarity > 0
                        and max(sims) > 1.0 - self.min_dissimilarity):
                    reason = "redundant"
                    break
                labelings.append(labels)
                emit_objective(max(sims) if sims else 0.0)
                if len(labelings) == self.n_solutions:
                    break
                transformer = self._clone_transformer()
                transformer.fit(data, labels)
                if getattr(transformer, "should_stop_", False):
                    transforms.append(transformer)
                    reason = "transformer"
                    break
                transforms.append(transformer)
                data = transformer.transform(data)
        if reason == "redundant":
            warnings.warn(
                "iterative alternative chain stopped early: round "
                f"{len(labelings) + 1} produced a near-duplicate of an "
                "earlier clustering (the residual space no longer yields "
                "dissimilar structure)",
                ConvergenceWarning, stacklevel=2,
            )
        self.labelings_ = labelings
        self.transforms_ = [None] + transforms
        self.stopped_reason_ = reason
        self.n_iter_ = len(labelings)
        record_convergence(self, capture.events)
        return self

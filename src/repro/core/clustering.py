"""Flat clustering containers.

The tutorial (slide 23) distinguishes a **cluster** (a set of similar
objects) from a **clustering** (a set of clusters). :class:`Clustering`
wraps an integer label vector — the representation every full-space
algorithm in this library produces — and offers set-level views of it.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..utils.validation import check_labels

__all__ = ["Clustering", "cross_tabulate"]


class Clustering:
    """An immutable flat partition of ``n`` objects, with optional noise.

    Parameters
    ----------
    labels : array-like of int, shape (n_samples,)
        Cluster label per object; ``-1`` marks noise.
    name : str, optional
        Human-readable tag (used by the experiment harness).

    Notes
    -----
    Cluster ids are exposed in sorted order; noise is never a cluster.
    """

    def __init__(self, labels, name=None):
        self._labels = check_labels(labels)
        self._labels.flags.writeable = False
        self.name = name

    @property
    def labels(self):
        """The label vector (read-only array)."""
        return self._labels

    @property
    def n_objects(self):
        """Number of objects, including noise."""
        return int(self._labels.shape[0])

    @property
    def cluster_ids(self):
        """Sorted array of cluster ids (noise excluded)."""
        ids = np.unique(self._labels)
        return ids[ids != -1]

    @property
    def n_clusters(self):
        """Number of clusters (noise excluded)."""
        return int(self.cluster_ids.size)

    @property
    def noise_indices(self):
        """Indices of noise objects."""
        return np.flatnonzero(self._labels == -1)

    def members(self, cluster_id):
        """Indices of the objects in ``cluster_id``."""
        idx = np.flatnonzero(self._labels == cluster_id)
        if idx.size == 0:
            raise ValidationError(f"cluster {cluster_id} does not exist")
        return idx

    def clusters(self):
        """List of member-index arrays, one per cluster (sorted by id)."""
        return [self.members(cid) for cid in self.cluster_ids]

    def sizes(self):
        """Cluster sizes aligned with :attr:`cluster_ids`."""
        return np.array([np.sum(self._labels == cid) for cid in self.cluster_ids])

    def restrict(self, indices):
        """Clustering induced on a subset of objects (labels re-used as-is)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Clustering(self._labels[indices], name=self.name)

    def relabeled(self):
        """Copy with cluster ids remapped to ``0..k-1`` (noise preserved)."""
        out = np.full(self.n_objects, -1, dtype=np.int64)
        for new_id, cid in enumerate(self.cluster_ids):
            out[self._labels == cid] = new_id
        return Clustering(out, name=self.name)

    def __len__(self):
        return self.n_clusters

    def __eq__(self, other):
        if not isinstance(other, Clustering):
            return NotImplemented
        return np.array_equal(self._labels, other._labels)

    def __hash__(self):
        return hash(self._labels.tobytes())

    def __repr__(self):
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"Clustering({self.n_clusters} clusters, {self.n_objects} objects,"
            f" {self.noise_indices.size} noise{tag})"
        )


def cross_tabulate(a, b):
    """Contingency table between two :class:`Clustering` (or label vectors)."""
    from ..metrics.contingency import contingency_matrix

    la = a.labels if isinstance(a, Clustering) else a
    lb = b.labels if isinstance(b, Clustering) else b
    return contingency_matrix(la, lb)

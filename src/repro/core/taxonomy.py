"""Machine-readable version of the tutorial's taxonomy (slides 20-22, 116).

Every algorithm in this library registers a :class:`TaxonomyEntry`
describing where it sits along the tutorial's axes:

* **search space** — original space / orthogonal transformations /
  subspace projections / multiple given views or sources;
* **processing** — iterative vs. simultaneous (or n/a for generators);
* **given knowledge** — whether a prior clustering is required;
* **number of clusterings** — exactly two, >= 2, one (consensus), ...;
* **subspace/view detection** — none, dissimilarity-aware, given views;
* **flexibility** — exchangeable cluster definition vs. specialised.

The registry regenerates the comparison table of slide 116 from the code
itself (experiment **T1**).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ValidationError

__all__ = [
    "SearchSpace",
    "Processing",
    "TaxonomyEntry",
    "register",
    "get_entry",
    "all_entries",
    "render_table",
]


class SearchSpace:
    """Search-space axis values (slide 21)."""

    ORIGINAL = "original"
    TRANSFORMED = "transformed"
    SUBSPACES = "subspaces"
    MULTI_SOURCE = "multi-source"

    ALL = (ORIGINAL, TRANSFORMED, SUBSPACES, MULTI_SOURCE)


class Processing:
    """Processing axis values (slide 22)."""

    ITERATIVE = "iterative"
    SIMULTANEOUS = "simultaneous"
    INDEPENDENT = "independent"

    ALL = (ITERATIVE, SIMULTANEOUS, INDEPENDENT)


@dataclass(frozen=True)
class TaxonomyEntry:
    """One row of the slide-116 comparison table."""

    key: str                    # registry key, e.g. "coala"
    reference: str              # citation, e.g. "Bae & Bailey, 2006"
    search_space: str
    processing: str
    given_knowledge: bool       # requires a given clustering?
    n_clusterings: str          # "2", ">=2", "1"
    view_detection: str         # "", "dissimilarity", "no dissimilarity", "given views"
    flexible_definition: bool   # exchangeable cluster definition?
    estimator: str = ""         # dotted class name
    notes: str = field(default="")

    def __post_init__(self):
        if self.search_space not in SearchSpace.ALL:
            raise ValidationError(f"unknown search space {self.search_space!r}")
        if self.processing not in Processing.ALL:
            raise ValidationError(f"unknown processing {self.processing!r}")
        if self.n_clusterings not in {"1", "2", ">=2"}:
            raise ValidationError(f"unknown n_clusterings {self.n_clusterings!r}")


_REGISTRY: dict[str, TaxonomyEntry] = {}


def register(entry):
    """Register a taxonomy entry (idempotent for identical entries)."""
    existing = _REGISTRY.get(entry.key)
    if existing is not None and existing != entry:
        raise ValidationError(f"conflicting taxonomy entry for key {entry.key!r}")
    _REGISTRY[entry.key] = entry
    return entry


def get_entry(key):
    """Look up a registered entry by key."""
    try:
        return _REGISTRY[key]
    except KeyError as exc:
        raise ValidationError(f"no taxonomy entry registered for {key!r}") from exc


def all_entries():
    """All entries, ordered by search space (paradigm) then key — the order
    used by the slide-116 table."""
    order = {s: i for i, s in enumerate(SearchSpace.ALL)}
    return sorted(_REGISTRY.values(), key=lambda e: (order[e.search_space], e.key))


def render_table(entries=None):
    """Render entries as a fixed-width text table (experiment T1)."""
    if entries is None:
        entries = all_entries()
    headers = [
        "algorithm", "reference", "space", "processing", "given know.",
        "#clusterings", "view detection", "flexibility",
    ]
    rows = [
        [
            e.key,
            e.reference,
            e.search_space,
            e.processing,
            "given clustering" if e.given_knowledge else "no",
            f"m == {e.n_clusterings}" if e.n_clusterings in {"1", "2"} else "m >= 2",
            e.view_detection or "-",
            "exchang. def." if e.flexible_definition else "specialized",
        ]
        for e in entries
    ]
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    def fmt(row):
        return " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
    lines = [fmt(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)

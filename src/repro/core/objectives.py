"""The abstract problem of slide 27, made executable.

    Detect clusterings Clust_1 ... Clust_m such that
        Q(Clust_i)             is high for all i, and
        Diss(Clust_i, Clust_j) is high for all i != j.

:class:`MultipleClusteringObjective` bundles a concrete ``Q`` and ``Diss``
and scores a set of clusterings; it is used by the benchmark harness to
compare iterative vs. simultaneous methods on equal footing (experiment
F3) and by greedy searchers (meta clustering selection).
"""

from __future__ import annotations

import numpy as np

from .clustering import Clustering
from ..exceptions import ValidationError
from ..metrics.clusterings import ari_dissimilarity
from ..metrics.internal import compactness, silhouette_score

__all__ = [
    "quality_compactness",
    "quality_silhouette",
    "MultipleClusteringObjective",
]


def quality_compactness(X, labels):
    """Negative SSE quality (k-means' objective; slide 28)."""
    return compactness(X, labels)


def quality_silhouette(X, labels):
    """Silhouette quality in ``[-1, 1]``."""
    return silhouette_score(X, labels)


def _as_labels(clustering):
    if isinstance(clustering, Clustering):
        return np.asarray(clustering.labels)
    return np.asarray(clustering)


class MultipleClusteringObjective:
    """Combined objective ``sum_i Q(C_i) + lam * sum_{i<j} Diss(C_i, C_j)``.

    Parameters
    ----------
    quality : callable ``(X, labels) -> float``
        Higher is better. Defaults to silhouette (scale-free, so it can be
        combined with dissimilarity without tuning).
    dissimilarity : callable ``(labels_a, labels_b) -> float``
        Higher means more different. Defaults to ``1 - ARI``.
    lam : float
        Trade-off weight on the dissimilarity term.
    """

    def __init__(self, quality=quality_silhouette,
                 dissimilarity=ari_dissimilarity, lam=1.0):
        self.quality = quality
        self.dissimilarity = dissimilarity
        self.lam = float(lam)

    def quality_sum(self, X, clusterings):
        labelings = [_as_labels(c) for c in clusterings]
        if not labelings:
            raise ValidationError("need at least one clustering")
        return float(sum(self.quality(X, lab) for lab in labelings))

    def dissimilarity_sum(self, clusterings):
        labelings = [_as_labels(c) for c in clusterings]
        m = len(labelings)
        total = 0.0
        for i in range(m):
            for j in range(i + 1, m):
                total += self.dissimilarity(labelings[i], labelings[j])
        return float(total)

    def score(self, X, clusterings):
        """The combined objective value (higher is better)."""
        return self.quality_sum(X, clusterings) + self.lam * self.dissimilarity_sum(
            clusterings
        )

    def breakdown(self, X, clusterings):
        """Dict with per-term values, for reporting."""
        q = self.quality_sum(X, clusterings)
        d = self.dissimilarity_sum(clusterings)
        return {
            "quality_sum": q,
            "dissimilarity_sum": d,
            "score": q + self.lam * d,
            "n_clusterings": len(list(clusterings)),
        }

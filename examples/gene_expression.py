"""Gene-expression scenario: one gene, several functional roles.

Slide 5 of the tutorial: genes behave differently under different
condition regimes, so a single clustering cannot capture all functional
roles. This example discovers both role structures with two paradigms:

* orthogonal space transformations (Cui et al. 2007) — iteratively
  cluster, project out the explanatory subspace, re-cluster;
* alternative clustering (minCEntropy, Vinh & Epps 2010) — given role 1,
  search for a dissimilar high-quality grouping.

Run:  python examples/gene_expression.py
"""

from repro.cluster import KMeans
from repro.data import load_gene_expression_like
from repro.metrics import adjusted_rand_index as ari
from repro.originalspace import MinCEntropy
from repro.transform import OrthogonalClustering


def main():
    X, role_stress, role_devel = load_gene_expression_like(
        n_genes=240, n_conditions=12, random_state=2)
    print(f"expression matrix: {X.shape[0]} genes x {X.shape[1]} conditions")
    print("planted: pathway roles under the stress regime AND independent "
          "roles under the development regime\n")

    # --- Paradigm 2: iterative orthogonal projections -------------------
    oc = OrthogonalClustering(n_clusters=3, max_clusterings=4,
                              random_state=0).fit(X)
    print(f"orthogonal clustering produced {len(oc.labelings_)} solutions "
          f"(stopped: {oc.stopped_reason_})")
    for i, lab in enumerate(oc.labelings_):
        print(f"  solution {i}: ARI vs stress roles {ari(lab, role_stress):+.3f}, "
              f"vs development roles {ari(lab, role_devel):+.3f}")

    # --- Paradigm 1: alternative given the first role structure ---------
    first = KMeans(n_clusters=3, random_state=0).fit(X).labels_
    alt = MinCEntropy(n_clusters=3, beta=2.0, random_state=0).fit(X, first)
    print("\nminCEntropy alternative to the full-space k-means roles:")
    print(f"  ARI vs given:             {ari(alt.labels_, first):+.3f}")
    print(f"  ARI vs stress roles:      {ari(alt.labels_, role_stress):+.3f}")
    print(f"  ARI vs development roles: {ari(alt.labels_, role_devel):+.3f}")

    # Which genes switch groups between the two roles? Those are the
    # multi-functional genes the biologists care about (slide 5).
    best = {}
    for name, truth in (("stress", role_stress), ("devel", role_devel)):
        best[name] = max(oc.labelings_, key=lambda lab: ari(lab, truth))
    switching = sum(
        1 for i in range(X.shape[0])
        if best["stress"][i] != best["devel"][i]
    )
    print(f"\ngenes whose group differs between the two role structures: "
          f"{switching} of {X.shape[0]}")


if __name__ == "__main__":
    main()

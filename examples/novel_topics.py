"""Text analysis: find novel topics beyond the known taxonomy.

Slide 7 of the tutorial: document collections have a well-known topic
structure (e.g. DB / DM / ML), and the interesting discovery is the
*alternative* grouping that does not repeat it. Two information-
theoretic alternative clusterers are compared:

* conditional information bottleneck (Gondek & Hofmann 2003/04) —
  compress documents while preserving word information *beyond* the
  known topics;
* minCEntropy (Vinh & Epps 2010) — kernel quality with a mutual-
  information penalty against the given labels.

Run:  python examples/novel_topics.py
"""

from repro.data import load_document_topics
from repro.metrics import adjusted_rand_index as ari
from repro.metrics import normalized_mutual_information as nmi
from repro.originalspace import ConditionalInformationBottleneck, MinCEntropy


def main():
    X, known_topics, novel_topics = load_document_topics(
        n_documents=180, vocab_size=24, random_state=4)
    print(f"corpus: {X.shape[0]} documents x {X.shape[1]} vocabulary terms")
    print("given: the known 3-topic taxonomy; hidden: an independent "
          "3-topic alternative\n")

    cib = ConditionalInformationBottleneck(
        n_clusters=3, beta=30.0, n_init=4, max_sweeps=15,
        random_state=1).fit(X, known_topics)
    print("conditional information bottleneck:")
    print(f"  ARI vs known topics: {ari(cib.labels_, known_topics):+.3f}")
    print(f"  ARI vs novel topics: {ari(cib.labels_, novel_topics):+.3f}")
    print(f"  objective F = I(X;C) - beta I(Y;C|D) = {cib.objective_:.3f}")

    mce = MinCEntropy(n_clusters=3, beta=2.0,
                      random_state=0).fit(X, known_topics)
    print("\nminCEntropy alternative:")
    print(f"  ARI vs known topics: {ari(mce.labels_, known_topics):+.3f}")
    print(f"  ARI vs novel topics: {ari(mce.labels_, novel_topics):+.3f}")
    print(f"  NMI vs known topics: {nmi(mce.labels_, known_topics):.3f}")

    winner = "CIB" if ari(cib.labels_, novel_topics) >= ari(
        mce.labels_, novel_topics) else "minCEntropy"
    print(f"\nbest recovery of the hidden alternative here: {winner}")


if __name__ == "__main__":
    main()

"""Sensor surveillance: consensus over multiple given sources.

Slide 6 motivates sensors described by several measurement modalities;
slides 94-107 cover clustering when the views are *given*. This example
exercises the two multi-source workhorses:

* co-EM (Bickel & Scheffer 2004) — bootstrapped mixture hypotheses over
  two conditionally independent views;
* multi-view DBSCAN (Kailing et al. 2004a) — union cores for sparse
  views (sensor dropouts), intersection cores for unreliable views
  (miscalibrated sensors).

Run:  python examples/sensor_multiview.py
"""

import numpy as np

from repro.cluster import GaussianMixtureEM
from repro.data import make_two_view_sources
from repro.metrics import adjusted_rand_index as ari
from repro.multiview import CoEM, MultiViewDBSCAN


def describe(name, labels, truth):
    coverage = float(np.mean(labels != -1))
    clusters = len(set(labels.tolist()) - {-1})
    score = ari(labels, truth) if coverage > 0 else float("nan")
    print(f"  {name:<22} ARI {score:+.3f}  coverage {coverage:.2f}  "
          f"clusters {clusters}")


def main():
    # --- co-EM on clean conditionally independent views ------------------
    (temp_view, humid_view), truth = make_two_view_sources(
        n_samples=240, n_clusters=3, cluster_std=0.8,
        min_center_distance=3.5, random_state=0)
    print("scenario 1: two clean sensor modalities (temperature / humidity)")
    for name, view in (("EM on temperature", temp_view),
                       ("EM on humidity", humid_view)):
        em = GaussianMixtureEM(n_components=3, covariance_type="spherical",
                               random_state=0).fit(view)
        describe(name, em.labels_, truth)
    coem = CoEM(n_clusters=3, random_state=0).fit((temp_view, humid_view))
    describe("co-EM (both views)", coem.labels_, truth)
    print(f"  view agreement after co-EM: {coem.agreement_:.2f}")

    # --- sparse views: sensors drop out per modality ---------------------
    (s1, s2), truth_sparse = make_two_view_sources(
        n_samples=240, n_clusters=3, sparse_noise_fraction=0.3,
        center_spread=6.0, min_center_distance=4.0, random_state=1)
    print("\nscenario 2: sparse views (30% dropouts per modality, disjoint)")
    for method in ("union", "intersection"):
        mv = MultiViewDBSCAN(eps=0.8, min_pts=6, method=method).fit((s1, s2))
        describe(f"MV-DBSCAN {method}", mv.labels_, truth_sparse)
    print("  -> union keeps full coverage because every sensor is reliable "
          "in at least one modality (slide 106)")

    # --- unreliable view: one modality miscalibrated ----------------------
    (u1, u2), truth_unrel = make_two_view_sources(
        n_samples=240, n_clusters=3, unreliable_view=1,
        unreliable_fraction=0.4, center_spread=6.0,
        min_center_distance=4.0, random_state=2)
    print("\nscenario 3: unreliable second modality (40% readings swapped)")
    for method in ("union", "intersection"):
        mv = MultiViewDBSCAN(eps=0.8, min_pts=6, method=method).fit((u1, u2))
        labels = mv.labels_
        covered = labels != -1
        pure = ari(labels[covered], truth_unrel[covered]) if covered.any() else 0.0
        describe(f"MV-DBSCAN {method}", labels, truth_unrel)
        print(f"    ARI restricted to covered objects: {pure:+.3f}")
    print("  -> intersection trades coverage for purity when a view lies "
          "(slide 107)")


if __name__ == "__main__":
    main()

"""Cross-paradigm benchmark: which paradigm wins where?

The tutorial closes by noting that no paradigm dominates — each has a
regime (slides 45/61/91/111) — and that the field lacks a common
benchmark (slide 123). This example runs one representative method per
paradigm on the library's benchmark suite and prints the per-scenario
`MultipleClusteringReport`, the Hungarian-matched evaluation of a set
of solutions against ALL planted truths.

Run:  python examples/cross_paradigm_benchmark.py
"""

from repro.data import benchmark_suite
from repro.experiments import run_b1_cross_paradigm
from repro.experiments.exp_crossparadigm import METHODS
from repro.metrics import MultipleClusteringReport


def main():
    suite = benchmark_suite()
    print("benchmark scenarios:")
    for scenario in suite.values():
        print(f"  {scenario.name:<10} n={scenario.X.shape[0]:<4} "
              f"d={scenario.X.shape[1]:<3} truths={scenario.n_truths}  "
              f"{scenario.description}")

    # The one-table view (experiment B1).
    print()
    table = run_b1_cross_paradigm(scenarios=("toy2", "views3", "customers"))
    print(table.render())

    # Drill into one scenario with the full report.
    scenario = suite["views3"]
    print(f"\ndetailed report on '{scenario.name}' "
          f"({scenario.description}):")
    for method, solver in METHODS.items():
        labelings = solver(scenario, random_state=0)
        report = MultipleClusteringReport(labelings, scenario.truths)
        print(f"\n--- {method} ---")
        print(report.render(threshold=0.7))


if __name__ == "__main__":
    main()

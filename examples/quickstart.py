"""Quickstart: one data set, several meaningful clusterings.

Reproduces the tutorial's opening example (slide 26): four Gaussian
blobs on the corners of a square admit *two* equally good 2-partitions.
Traditional k-means commits to one; the library's alternative-clustering
and simultaneous methods surface the other.

Run:  python examples/quickstart.py
"""

from repro.cluster import KMeans
from repro.core import MultipleClusteringObjective
from repro.data import make_four_squares
from repro.metrics import adjusted_rand_index as ari
from repro.originalspace import COALA, DecorrelatedKMeans


def main():
    X, truth_h, truth_v = make_four_squares(
        n_samples=200, separation=4.0, cluster_std=0.5, random_state=0)
    print(f"data: {X.shape[0]} points, 2 features, "
          "two planted 2-partitions (horizontal / vertical)")

    # 1. Traditional clustering: one solution, one perspective.
    km = KMeans(n_clusters=2, random_state=0).fit(X)
    print("\nk-means (traditional, single solution):")
    print(f"  ARI vs horizontal truth: {ari(km.labels_, truth_h):+.3f}")
    print(f"  ARI vs vertical truth:   {ari(km.labels_, truth_v):+.3f}")

    # 2. Alternative clustering: given k-means' answer, find a *different*
    #    high-quality grouping (COALA, Bae & Bailey 2006).
    coala = COALA(n_clusters=2, w=0.8).fit(X, km.labels_)
    print("\nCOALA alternative (given the k-means solution):")
    print(f"  ARI vs horizontal truth: {ari(coala.labels_, truth_h):+.3f}")
    print(f"  ARI vs vertical truth:   {ari(coala.labels_, truth_v):+.3f}")
    print(f"  ARI vs given clustering: {ari(coala.labels_, km.labels_):+.3f}")

    # 3. Simultaneous discovery: both clusterings at once
    #    (Decorrelated k-means, Jain et al. 2008).
    dk = DecorrelatedKMeans(n_clusters=2, n_clusterings=2, lam=5.0,
                            n_init=20, random_state=0).fit(X)
    a, b = dk.labelings_
    print("\nDecorrelated k-means (simultaneous, no given knowledge):")
    print(f"  clustering 1 — ARI h/v: {ari(a, truth_h):+.3f} / {ari(a, truth_v):+.3f}")
    print(f"  clustering 2 — ARI h/v: {ari(b, truth_h):+.3f} / {ari(b, truth_v):+.3f}")
    print(f"  cross ARI (should be ~0): {ari(a, b):+.3f}")

    # 4. The slide-27 objective scores any set of clusterings.
    objective = MultipleClusteringObjective(lam=1.0)
    for name, solutions in [
        ("k-means twice (redundant)", [km.labels_, km.labels_]),
        ("k-means + COALA", [km.labels_, coala.labels_]),
        ("dec-kmeans pair", list(dk.labelings_)),
    ]:
        breakdown = objective.breakdown(X, solutions)
        print(f"\nobjective for {name}:")
        print(f"  sum Q = {breakdown['quality_sum']:.3f}, "
              f"sum Diss = {breakdown['dissimilarity_sum']:.3f}, "
              f"combined = {breakdown['score']:.3f}")


if __name__ == "__main__":
    main()

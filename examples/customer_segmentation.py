"""Customer segmentation: groupings hidden in attribute subsets.

Slides 8/14-18 of the tutorial: customers look unique on all attributes
together, but cluster cleanly on the *professional* attribute subset and
— differently — on the *leisure* subset. This example runs the full
subspace pipeline:

1. mine ALL subspace clusters with SCHISM (adaptive density threshold);
2. select one cluster per orthogonal concept with OSCLU;
3. assume the professional segmentation is already known and extract the
   residual alternative with ASCLU (slide 18: "detect the residual").

Run:  python examples/customer_segmentation.py
"""

import numpy as np

from repro.core import SubspaceClustering
from repro.data import load_customer_segments
from repro.metrics import pair_f1_subspace
from repro.subspace import ASCLU, OSCLU, SCHISM


def main():
    X, truth_prof, truth_leis, views = load_customer_segments(
        n_customers=300, random_state=3)
    prof_cols, leis_cols = views
    print(f"customer table: {X.shape[0]} rows x {X.shape[1]} attributes")
    print(f"  professional view: columns {prof_cols}")
    print(f"  leisure view:      columns {leis_cols}\n")

    # --- 1. mine ALL subspace clusters -----------------------------------
    schism = SCHISM(n_intervals=6, tau=0.01, max_dim=3).fit(X)
    print(f"SCHISM found {len(schism.clusters_)} subspace clusters in "
          f"{len(schism.clusters_.subspaces())} distinct subspaces:")
    for subspace, clusters in sorted(
            schism.clusters_.group_by_subspace().items()):
        sizes = sorted((c.n_objects for c in clusters), reverse=True)
        print(f"  subspace {subspace}: {len(clusters)} clusters, sizes {sizes}")

    # --- 2. orthogonal concept selection ---------------------------------
    osclu = OSCLU(alpha=0.5, beta=0.34).fit(schism.clusters_)
    print(f"\nOSCLU kept {len(osclu.clusters_)} clusters "
          f"in subspaces {osclu.clusters_.subspaces()}")

    # Ground truth as (objects, dims) clusters for scoring.
    hidden = SubspaceClustering(
        [(np.flatnonzero(truth_prof == c).tolist(), prof_cols)
         for c in range(3)]
        + [(np.flatnonzero(truth_leis == c).tolist(), leis_cols)
           for c in range(3)]
    )
    print(f"object-level F1 of the OSCLU result vs both planted "
          f"segmentations: {pair_f1_subspace(osclu.clusters_, hidden):.3f}")

    # --- 3. alternative given the professional segmentation --------------
    known = SubspaceClustering(
        [(np.flatnonzero(truth_prof == c).tolist(), prof_cols)
         for c in range(3)],
        name="known professional segments",
    )
    asclu = ASCLU(alpha=0.5, beta=0.34).fit(schism.clusters_, known)
    print(f"\nASCLU given the professional segmentation returned "
          f"{len(asclu.clusters_)} clusters in subspaces "
          f"{asclu.clusters_.subspaces()}")
    touches_professional = any(
        set(c.dims) & set(prof_cols) for c in asclu.clusters_
    )
    print("ASCLU result reuses the professional concept: "
          f"{touches_professional}")
    leisure_truth = SubspaceClustering(
        [(np.flatnonzero(truth_leis == c).tolist(), leis_cols)
         for c in range(3)]
    )
    print("object-level F1 of the alternative vs leisure segmentation: "
          f"{pair_f1_subspace(asclu.clusters_, leisure_truth):.3f}")


if __name__ == "__main__":
    main()

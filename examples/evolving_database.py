"""Evolving databases: recover the views a merge destroyed.

Slide 11 of the tutorial: growing databases merge what used to be
separate tables into one wide universal table, and the original
relations — which columns belonged together — get lost. Given only the
merged table, this example recovers the lost views two independent
ways and cross-checks them:

1. ENCLUS ranks subspaces by interest (total correlation) — the lost
   views reappear as the top-ranked attribute combinations;
2. iterative orthogonal projections recover one clustering per lost
   view without ever being told the column groups.

Run:  python examples/evolving_database.py
"""

import numpy as np

from repro.data import make_multiple_truths
from repro.metrics import adjusted_rand_index as ari
from repro.subspace import EnclusSubspaceSearch
from repro.transform import OrthogonalClustering


def main():
    # The "universal table": three historical views merged column-wise,
    # plus two junk columns added over time. Nobody remembers the split.
    X, truths, lost_views = make_multiple_truths(
        n_samples=300, n_views=3, clusters_per_view=2, features_per_view=2,
        center_spread=(8.0, 5.5, 3.0), cluster_std=0.4, noise_features=2,
        random_state=5)
    print(f"universal table: {X.shape[0]} rows x {X.shape[1]} columns")
    print(f"lost views (unknown to the algorithms): {lost_views}\n")
    # Merged tables mix units; standardise columns (routine preprocessing)
    # so the junk columns' arbitrary scale does not dominate distances.
    X = (X - X.mean(axis=0)) / X.std(axis=0)

    # --- Route 1: subspace interest ranking ------------------------------
    search = EnclusSubspaceSearch(n_intervals=6, omega=10.0, epsilon=0.1,
                                  max_dim=2).fit(X)
    print("ENCLUS top-5 subspaces by interest (lost views should lead):")
    for subspace in search.subspaces_[:5]:
        marker = "  <-- lost view" if subspace in lost_views else ""
        print(f"  {subspace}: interest {search.interests_[subspace]:.3f}"
              f"{marker}")
    recovered = [s for s in search.subspaces_[:3] if s in lost_views]
    print(f"recovered {len(recovered)} of 3 lost views in the top-3\n")

    # --- Route 2: orthogonal projections ---------------------------------
    oc = OrthogonalClustering(n_clusters=2, max_clusterings=5,
                              random_state=0).fit(X)
    print(f"orthogonal clustering produced {len(oc.labelings_)} solutions:")
    for i, lab in enumerate(oc.labelings_):
        scores = [ari(lab, t) for t in truths]
        best = int(np.argmax(scores))
        print(f"  solution {i}: best matches lost view {best} "
              f"(ARI {scores[best]:+.3f})")

    # --- Cross-check: do the two routes agree? ---------------------------
    print("\ncross-check: clustering each ENCLUS-ranked view directly and "
          "comparing to the orthogonal solutions")
    for subspace, labels in search.cluster_subspaces(X, n_clusters=2, top=3,
                                                     random_state=0):
        best = max(ari(labels, lab) for lab in oc.labelings_)
        print(f"  view {subspace}: best agreement with an orthogonal "
              f"solution ARI {best:+.3f}")


if __name__ == "__main__":
    main()

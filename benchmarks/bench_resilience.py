"""Run the chaos harness and commit its availability/recovery numbers.

Usage:  python benchmarks/bench_resilience.py [--smoke] [--jobs N]

Thin wrapper around ``repro chaos`` (:mod:`repro.robustness.chaos`)
that writes the committed ``BENCH_resilience.json`` at the repo root:
per-scenario availability %, p99 latency, and recovery seconds for the
five injected faults (worker SIGKILL, cache corruption, disk-full
degradation, overload shedding, whole-server kill + restart).

Unlike the microbenchmarks this is a *system* benchmark — it boots
real server subprocesses and injects real signals — so expect roughly
a minute for the full run. Exit status 1 when any chaos invariant
fails (a wrong result served, recovery over the bound, availability
under the floor during overload).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.robustness.chaos import (  # noqa: E402
    render_report,
    run_chaos,
    write_report,
)

OUTPUT = ROOT / "BENCH_resilience.json"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast subset (worker-kill + corrupt-entry)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="pool size for each server under test")
    parser.add_argument("--out", default=str(OUTPUT),
                        help=f"report path (default {OUTPUT})")
    args = parser.parse_args(argv)

    report = run_chaos(smoke=args.smoke, jobs=args.jobs)
    print(render_report(report))
    write_report(report, args.out)
    print(f"wrote {args.out}")
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

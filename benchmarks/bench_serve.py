"""Measure serving latency and throughput of the repro serve stack.

Usage:  python benchmarks/bench_serve.py

Spins up a real :class:`~repro.serve.ModelServer` on an ephemeral port
and measures, over actual HTTP round-trips:

* **cold** fits — distinct (params, seed) requests that each fit a
  model end to end (submit, poll, fetch); p50/p99 of the full
  request-to-model wall time;
* **cached** hits — repeats of one request whose model is already
  registered; the POST itself returns the ``done`` job, so one
  round-trip covers fingerprinting, key lookup, and registry read;
* **throughput** — jobs/sec with several client threads submitting
  concurrently against the bounded queue (429s are retried, so the
  number also exercises backpressure).

The committed claim (``--min-speedup``, default 10): a cache hit is at
least 10x faster than a cold fit at the median. The workload is sized
so a cold fit does real optimisation work (k-means on an 800x10 matrix
with ``n_init=80``) rather than measuring HTTP overhead twice.

Writes the committed ``BENCH_serve.json`` at the repo root. Exit
status 1 when the speedup claim does not hold.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.serve import (  # noqa: E402
    JobScheduler,
    ModelRegistry,
    make_server,
)

OUTPUT = ROOT / "BENCH_serve.json"


def _dataset(n_samples=800, n_features=10, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=6.0, size=(6, n_features))
    X = np.concatenate([
        rng.normal(size=(n_samples // 6, n_features)) + c for c in centers
    ])
    return X


def _request(url, payload=None, timeout=120):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _submit_and_fetch(url, body, poll_interval=0.002):
    """One full client interaction; returns (seconds, was_cached)."""
    start = time.perf_counter()
    status, resp = _request(f"{url}/jobs", body)
    job = resp["job"]
    while job["status"] not in ("done", "failed"):
        time.sleep(poll_interval)
        _, resp = _request(f"{url}/jobs/{job['id']}")
        job = resp["job"]
    if job["status"] != "done":
        raise RuntimeError(f"benchmark job failed: {job.get('error')}")
    _request(url + job["model_url"])
    return time.perf_counter() - start, job["cached"]


def _percentiles(samples):
    ordered = sorted(samples)
    return {
        "p50_ms": round(1000 * statistics.median(ordered), 3),
        "p99_ms": round(1000 * ordered[min(len(ordered) - 1,
                                           int(0.99 * len(ordered)))], 3),
        "mean_ms": round(1000 * statistics.fmean(ordered), 3),
        "n": len(ordered),
    }


def _bench_cold(url, X, rounds):
    """Distinct seeds -> every request fits a fresh model."""
    times = []
    for seed in range(rounds):
        body = {"estimator": "KMeans", "dataset": X.tolist(),
                "params": {"n_clusters": 6, "n_init": 80}, "seed": seed}
        seconds, cached = _submit_and_fetch(url, body)
        assert not cached, "cold request unexpectedly hit the cache"
        times.append(seconds)
    return times


def _bench_cached(url, X, rounds):
    """One already-fitted request repeated -> registry hits only."""
    body = {"estimator": "KMeans", "dataset": X.tolist(),
            "params": {"n_clusters": 6, "n_init": 80}, "seed": 0}
    _submit_and_fetch(url, body)  # ensure the model is registered
    times = []
    for _ in range(rounds):
        seconds, cached = _submit_and_fetch(url, body)
        assert cached, "warm request unexpectedly missed the cache"
        times.append(seconds)
    return times


def _bench_throughput(url, X, clients, per_client):
    """Concurrent distinct submissions; 429s back off and retry."""
    done = []
    lock = threading.Lock()

    def client(client_id):
        for i in range(per_client):
            body = {"estimator": "KMeans", "dataset": X.tolist(),
                    "params": {"n_clusters": 6, "n_init": 80},
                    "seed": 1000 + client_id * per_client + i}
            while True:
                try:
                    seconds, _ = _submit_and_fetch(url, body)
                except urllib.error.HTTPError as exc:
                    if exc.code == 429:
                        time.sleep(0.05)
                        continue
                    raise
                break
            with lock:
                done.append(seconds)

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    return {
        "clients": clients,
        "jobs": len(done),
        "seconds": round(elapsed, 4),
        "jobs_per_sec": round(len(done) / elapsed, 3),
        "latency": _percentiles(done),
    }


def measure(cold_rounds=12, cached_rounds=50, clients=4, per_client=3):
    X = _dataset()
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp, max_entries=1024)
        scheduler = JobScheduler(registry, jobs=1, queue_limit=8).start()
        server = make_server("127.0.0.1", 0, scheduler=scheduler,
                             model_registry=registry)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            cold = _bench_cold(server.url, X, cold_rounds)
            cached = _bench_cached(server.url, X, cached_rounds)
            throughput = _bench_throughput(server.url, X, clients,
                                           per_client)
        finally:
            scheduler.shutdown(drain=False, timeout=30)
            server.shutdown()
            server.server_close()
            thread.join(timeout=30)
    cold_p = _percentiles(cold)
    cached_p = _percentiles(cached)
    return {
        "benchmark": "repro serve HTTP latency and throughput",
        "config": {
            "workload": "KMeans n_clusters=6 n_init=80 on 798x10 blobs",
            "transport": "real HTTP round-trips against an ephemeral "
                         "ThreadingHTTPServer, jobs=1, queue_limit=8",
            "cold_rounds": cold_rounds,
            "cached_rounds": cached_rounds,
        },
        "cold": cold_p,
        "cached": cached_p,
        "throughput": throughput,
        "cache_speedup": round(cold_p["p50_ms"] / cached_p["p50_ms"], 1),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cold-rounds", type=int, default=12)
    parser.add_argument("--cached-rounds", type=int, default=50)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--per-client", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="required cold/cached p50 ratio (default 10)")
    parser.add_argument("--no-write", action="store_true",
                        help="measure without rewriting BENCH_serve.json")
    args = parser.parse_args(argv)

    report = measure(cold_rounds=args.cold_rounds,
                     cached_rounds=args.cached_rounds,
                     clients=args.clients, per_client=args.per_client)
    report["summary"] = {
        "min_speedup": args.min_speedup,
        "speedup_ok": report["cache_speedup"] >= args.min_speedup,
    }
    if not args.no_write:
        OUTPUT.write_text(json.dumps(report, indent=2) + "\n",
                          encoding="utf-8")
        print(f"wrote {OUTPUT}")
    print(f"cold p50 {report['cold']['p50_ms']:.1f}ms / "
          f"cached p50 {report['cached']['p50_ms']:.1f}ms = "
          f"{report['cache_speedup']:.1f}x speedup "
          f"(need >= {args.min_speedup:.0f}x); "
          f"throughput {report['throughput']['jobs_per_sec']:.2f} jobs/s "
          f"with {report['throughput']['clients']} clients -> "
          f"{'OK' if report['summary']['speedup_ok'] else 'BELOW CLAIM'}")
    return 0 if report["summary"]["speedup_ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""F2 — COALA's w trade-off between quality and dissimilarity."""

from repro.experiments import run_f2_coala_tradeoff


def test_f2_coala_tradeoff(benchmark, show_table):
    table = benchmark.pedantic(
        run_f2_coala_tradeoff, kwargs={"n_samples": 160},
        rounds=2, iterations=1,
    )
    show_table(table)
    diss = table.column("dissimilarity_to_given")
    assert diss[0] > diss[-1]

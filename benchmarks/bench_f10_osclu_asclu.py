"""F10 — orthogonal concepts and subspace alternatives."""

from repro.experiments import run_f10_osclu_asclu


def test_f10_osclu_asclu(benchmark, show_table):
    table = benchmark.pedantic(
        run_f10_osclu_asclu, kwargs={"n_samples": 240},
        rounds=2, iterations=1,
    )
    show_table(table)
    rows = {r["quantity"]: r["value"] for r in table.rows}
    assert rows["ASCLU reuses known concept"] is False

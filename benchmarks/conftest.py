"""Benchmark-suite helpers.

Each ``bench_*`` file regenerates one tutorial table/figure: it prints
the experiment's :class:`ResultTable` once (so running the suite
reproduces EXPERIMENTS.md) and times the underlying computation with
pytest-benchmark.
"""

import pytest


@pytest.fixture
def show_table(capsys):
    """Print a ResultTable to the real terminal (past capture)."""

    def _show(table):
        with capsys.disabled():
            print()
            print(table.render())
        return table

    return _show

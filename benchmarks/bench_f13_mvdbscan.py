"""F13 — multi-view DBSCAN: union vs intersection."""

from repro.experiments import run_f13_mvdbscan


def test_f13_mvdbscan(benchmark, show_table):
    table = benchmark.pedantic(
        run_f13_mvdbscan, kwargs={"n_samples": 240},
        rounds=3, iterations=1,
    )
    show_table(table)
    rows = {(r["scenario"], r["method"]): r for r in table.rows}
    assert rows[("sparse views", "union")]["coverage"] > \
        rows[("sparse views", "intersection")]["coverage"]

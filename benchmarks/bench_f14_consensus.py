"""F14 — consensus over extracted views stabilises clustering."""

from repro.experiments import run_f14_consensus


def test_f14_consensus(benchmark, show_table):
    table = benchmark.pedantic(
        run_f14_consensus, kwargs={"n_samples": 200, "n_runs": 8},
        rounds=1, iterations=1,
    )
    show_table(table)
    rows = {r["method"]: r for r in table.rows}
    ens = [v for k, v in rows.items() if "ensemble" in k][0]
    single = [v for k, v in rows.items() if k.startswith("single")][0]
    assert ens["ari_std"] <= single["ari_std"] + 1e-9

"""F8 — SCHISM's dimensionality-adaptive density threshold."""

from repro.experiments import run_f8_schism_threshold


def test_f8_schism_threshold(benchmark, show_table):
    table = benchmark.pedantic(
        run_f8_schism_threshold, kwargs={"n_samples": 300},
        rounds=3, iterations=1,
    )
    show_table(table)
    rows = {r["quantity"]: r["value"] for r in table.rows}
    assert rows["schism found cluster in hidden subspace"] is True

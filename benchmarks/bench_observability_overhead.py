"""Measure the cost of the observability layer on estimator fits.

Usage:  PYTHONPATH=src python benchmarks/bench_observability_overhead.py

Times each substrate's ``fit`` in four modes and writes the committed
``BENCH_observability.json`` at the repo root:

* ``stubbed``  — ``budget_tick`` replaced by a no-op in every algorithm
  module: the closest approximation of an uninstrumented build;
* ``off``      — the shipped default: no tracer, no capture scope; the
  seam costs three ``ContextVar`` reads per iteration. The contract is
  ``off`` within 2% of ``stubbed`` (see docs/observability.md);
* ``traced``   — inside an active :class:`~repro.observability.Tracer`;
* ``profiled`` — tracer with ``profile_memory=True`` (tracemalloc),
  documented as the expensive mode.

Modes are interleaved round-robin (one fit per mode per round) so cache
warm-up and CPU-frequency drift hit all modes alike, and each mode's
time is the *minimum* over ``--repeats`` rounds — the standard
microbenchmark estimator for the noise-free cost.

A second, ``cross_process`` section measures the distributed-tracing
path: an untraced vs traced ``jobs=4`` pooled sweep (the traced run
exports per-worker span shards and merges them back into one causal
tree), plus the standalone cost of ``Tracer.merge_shards`` on
synthetic four-shard input, so the shard-merge cost is visible
separately from the sweep it rides on.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.cluster import (  # noqa: E402
    FuzzyCMeans,
    GaussianMixtureEM,
    KernelKMeans,
    KMeans,
    KMedoids,
    SpectralClustering,
)
from repro.data import make_blobs  # noqa: E402
from repro.observability import Tracer  # noqa: E402

OUTPUT = ROOT / "BENCH_observability.json"

ALGORITHMS = [
    ("kmeans", lambda: KMeans(n_clusters=4, random_state=0)),
    ("gmm", lambda: GaussianMixtureEM(n_components=4, random_state=0)),
    ("fcm", lambda: FuzzyCMeans(n_clusters=4, random_state=0)),
    ("kernel_kmeans", lambda: KernelKMeans(n_clusters=4, random_state=0)),
    ("kmedoids", lambda: KMedoids(n_clusters=4, random_state=0)),
    ("spectral", lambda: SpectralClustering(n_clusters=4, random_state=0)),
]


def _data(n_samples=300):
    X, _ = make_blobs(n_samples=n_samples, centers=4, n_features=8,
                      cluster_std=1.0, random_state=0)
    return X


def _tick_sites():
    """Every module holding a ``budget_tick`` binding (import-by-name)."""
    import repro.robustness.guard as guard

    sites = []
    for module in list(sys.modules.values()):
        if (module is not None
                and getattr(module, "__name__", "").startswith("repro")
                and getattr(module, "budget_tick", None) is guard.budget_tick):
            sites.append(module)
    return sites


class _StubbedTicks:
    """Temporarily replace ``budget_tick`` with a no-op everywhere."""

    def __enter__(self):
        def noop(n=1, objective=None):
            return None

        import repro.robustness.guard as guard

        # Grab the real function BEFORE patching: guard itself is one of
        # the sites, so reading it afterwards would restore the no-op.
        self._original = guard.budget_tick
        self._sites = _tick_sites()
        for module in self._sites:
            module.budget_tick = noop
        return self

    def __exit__(self, exc_type, exc, tb):
        for module in self._sites:
            module.budget_tick = self._original


def _one_fit_seconds(factory, X):
    est = factory()
    start = time.perf_counter()
    est.fit(X)
    return time.perf_counter() - start, est


def _measure_algorithm(factory, X, repeats):
    """Interleaved min-of-N timing of all four modes for one algorithm.

    The mode order rotates every round so no mode systematically pays
    the cost of its predecessor (tracemalloc teardown, cold caches),
    and GC is paused around each timed fit.
    """
    import gc

    est_box = {}
    profiler = Tracer(profile_memory=True)

    def run_stubbed():
        with _StubbedTicks():
            return _one_fit_seconds(factory, X)[0]

    def run_off():
        t, est_box["est"] = _one_fit_seconds(factory, X)
        return t

    def run_traced():
        with Tracer():
            return _one_fit_seconds(factory, X)[0]

    def run_profiled():
        with profiler:
            return _one_fit_seconds(factory, X)[0]

    modes = [("stubbed", run_stubbed), ("off", run_off),
             ("traced", run_traced), ("profiled", run_profiled)]
    times = {name: [] for name, _ in modes}
    was_enabled = gc.isenabled()
    try:
        for round_no in range(repeats):
            order = modes[round_no % 4:] + modes[:round_no % 4]
            for name, run in order:
                gc.collect()
                gc.disable()
                try:
                    times[name].append(run())
                finally:
                    if was_enabled:
                        gc.enable()
    finally:
        if was_enabled:
            gc.enable()
    peaks = [s.peak_bytes for s in profiler.spans
             if s.peak_bytes is not None]
    return ({mode: min(vals) for mode, vals in times.items()},
            est_box["est"], peaks)


def _sweep_experiment():
    """One pooled-sweep work item: a restart sweep of real KMeans fits,
    sized like a small experiment (tens of ms) so the traced run's
    fixed I/O cost is weighed against representative work."""
    from repro.experiments.harness import ResultTable

    X = _data(600)
    table = ResultTable("bench", ["seed", "n_iter"])
    for seed in range(5):
        est = KMeans(n_clusters=4, random_state=seed)
        est.fit(X)
        table.add(seed=float(seed), n_iter=float(est.n_iter_))
    return table


def measure_cross_process(repeats=3, jobs=4, n_keys=8, shard_spans=2000):
    """Traced vs untraced pooled sweep + standalone shard-merge cost."""
    from repro.experiments.harness import run_experiments
    from repro.observability import (
        Tracer,
        read_jsonl,
        trace_shard_path,
        write_records_jsonl,
    )

    grid = {f"K{i:02d}": _sweep_experiment for i in range(n_keys)}
    run_experiments(dict(grid), jobs=jobs)  # warm the pool path

    untraced, traced = [], []
    span_count = 0
    with tempfile.TemporaryDirectory() as tmp:
        trace = pathlib.Path(tmp) / "trace.jsonl"
        for round_no in range(repeats):
            # alternate which mode goes first so neither systematically
            # pays for its predecessor's page-cache state
            modes = ["untraced", "traced"]
            if round_no % 2:
                modes.reverse()
            for mode in modes:
                start = time.perf_counter()
                if mode == "untraced":
                    run_experiments(dict(grid), jobs=jobs)
                    untraced.append(time.perf_counter() - start)
                else:
                    tracer = Tracer()
                    run_experiments(dict(grid), jobs=jobs, tracer=tracer,
                                    trace_path=trace)
                    tracer.write_jsonl(trace)
                    traced.append(time.perf_counter() - start)
                    span_count = len(read_jsonl(trace))

        # standalone shard-merge cost on synthetic four-shard input
        trace_id = "ab" * 16
        shards = []
        per_shard = shard_spans // 4
        for slot in range(4):
            records = []
            parent = None
            for i in range(per_shard):
                span_id = f"{slot:02x}{i:014x}"
                records.append({
                    "name": f"fit-{slot}-{i}", "path": f"fit-{slot}-{i}",
                    "depth": 0 if parent is None else 1,
                    "start": i * 1e-3, "duration": 1e-3, "n_ticks": 1,
                    "trace_id": trace_id, "span_id": span_id,
                    "parent_id": parent, "worker": slot,
                })
                parent = span_id if i % 8 == 0 else parent
            shard = trace_shard_path(pathlib.Path(tmp) / "m.jsonl", slot)
            write_records_jsonl(shard, records)
            shards.append(shard)
        merge_times = []
        for _ in range(repeats):
            start = time.perf_counter()
            merged = Tracer.merge_shards(shards)
            merge_times.append(time.perf_counter() - start)
        merge_s = min(merge_times)

    best_untraced = min(untraced)
    best_traced = min(traced)
    return {
        "config": {"jobs": int(jobs), "n_keys": int(n_keys),
                   "repeats": int(repeats),
                   "timing": "min sweep seconds, modes interleaved"},
        "untraced_sweep_s": round(best_untraced, 6),
        "traced_sweep_s": round(best_traced, 6),
        "traced_overhead_pct": round(
            100.0 * (best_traced - best_untraced) / best_untraced, 2),
        "spans_exported": int(span_count),
        "shard_merge": {
            "shards": 4,
            "records": len(merged),
            "merge_s": round(merge_s, 6),
            "records_per_s": round(len(merged) / merge_s, 1),
        },
    }


def measure(repeats=5, n_samples=300):
    """Per-algorithm timings for all four modes; returns the report dict."""
    X = _data(n_samples)
    report = {
        "benchmark": "observability overhead",
        "config": {"n_samples": int(n_samples), "n_features": 8,
                   "repeats": int(repeats),
                   "timing": "min fit seconds, modes interleaved"},
        "algorithms": {},
    }
    for name, factory in ALGORITHMS:
        factory().fit(X)  # warm caches before timing anything
        best, est, peaks = _measure_algorithm(factory, X, repeats)
        stubbed = best["stubbed"]
        off = best["off"]
        traced = best["traced"]
        profiled = best["profiled"]
        entry = {
            "stubbed_s": round(stubbed, 6),
            "off_s": round(off, 6),
            "traced_s": round(traced, 6),
            "profiled_s": round(profiled, 6),
            "off_overhead_pct": round(100.0 * (off - stubbed) / stubbed, 2),
            "traced_overhead_pct": round(
                100.0 * (traced - stubbed) / stubbed, 2),
            "n_iter": int(est.n_iter_),
            "trace_len": len(est.convergence_trace_),
            "peak_kb": round(max(peaks) / 1024.0, 1) if peaks else None,
        }
        report["algorithms"][name] = entry
    offs = [a["off_overhead_pct"] for a in report["algorithms"].values()]
    report["summary"] = {
        "mean_off_overhead_pct": round(statistics.mean(offs), 2),
        "max_off_overhead_pct": round(max(offs), 2),
        "budget_pct": 2.0,
        "within_budget": statistics.mean(offs) < 2.0,
    }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=16)
    parser.add_argument("--n-samples", type=int, default=300)
    parser.add_argument("--sweep-repeats", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--output", type=pathlib.Path, default=OUTPUT)
    args = parser.parse_args(argv)
    report = measure(repeats=args.repeats, n_samples=args.n_samples)
    report["cross_process"] = measure_cross_process(
        repeats=args.sweep_repeats, jobs=args.jobs)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    for name, entry in report["algorithms"].items():
        print(f"{name:>14}: off {entry['off_s'] * 1000:8.2f}ms "
              f"({entry['off_overhead_pct']:+5.2f}% vs stubbed), "
              f"traced {entry['traced_overhead_pct']:+5.2f}%, "
              f"peak {entry['peak_kb']}KB")
    cross = report["cross_process"]
    print(f"cross-process: jobs={cross['config']['jobs']} sweep "
          f"untraced {cross['untraced_sweep_s'] * 1000:.1f}ms, traced "
          f"{cross['traced_sweep_s'] * 1000:.1f}ms "
          f"({cross['traced_overhead_pct']:+.2f}%), "
          f"{cross['spans_exported']} spans; shard merge "
          f"{cross['shard_merge']['records']} records in "
          f"{cross['shard_merge']['merge_s'] * 1000:.1f}ms")
    summary = report["summary"]
    print(f"mean disabled-path overhead {summary['mean_off_overhead_pct']}% "
          f"(budget {summary['budget_pct']}%) -> "
          f"{'OK' if summary['within_budget'] else 'OVER BUDGET'}")
    print(f"wrote {args.output}")
    return 0 if summary["within_budget"] else 1


if __name__ == "__main__":
    sys.exit(main())

"""Measure the cost of the observability layer on estimator fits.

Usage:  PYTHONPATH=src python benchmarks/bench_observability_overhead.py

Times each substrate's ``fit`` in four modes and writes the committed
``BENCH_observability.json`` at the repo root:

* ``stubbed``  — ``budget_tick`` replaced by a no-op in every algorithm
  module: the closest approximation of an uninstrumented build;
* ``off``      — the shipped default: no tracer, no capture scope; the
  seam costs three ``ContextVar`` reads per iteration. The contract is
  ``off`` within 2% of ``stubbed`` (see docs/observability.md);
* ``traced``   — inside an active :class:`~repro.observability.Tracer`;
* ``profiled`` — tracer with ``profile_memory=True`` (tracemalloc),
  documented as the expensive mode.

Modes are interleaved round-robin (one fit per mode per round) so cache
warm-up and CPU-frequency drift hit all modes alike, and each mode's
time is the *minimum* over ``--repeats`` rounds — the standard
microbenchmark estimator for the noise-free cost.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.cluster import (  # noqa: E402
    FuzzyCMeans,
    GaussianMixtureEM,
    KernelKMeans,
    KMeans,
    KMedoids,
    SpectralClustering,
)
from repro.data import make_blobs  # noqa: E402
from repro.observability import Tracer  # noqa: E402

OUTPUT = ROOT / "BENCH_observability.json"

ALGORITHMS = [
    ("kmeans", lambda: KMeans(n_clusters=4, random_state=0)),
    ("gmm", lambda: GaussianMixtureEM(n_components=4, random_state=0)),
    ("fcm", lambda: FuzzyCMeans(n_clusters=4, random_state=0)),
    ("kernel_kmeans", lambda: KernelKMeans(n_clusters=4, random_state=0)),
    ("kmedoids", lambda: KMedoids(n_clusters=4, random_state=0)),
    ("spectral", lambda: SpectralClustering(n_clusters=4, random_state=0)),
]


def _data(n_samples=300):
    X, _ = make_blobs(n_samples=n_samples, centers=4, n_features=8,
                      cluster_std=1.0, random_state=0)
    return X


def _tick_sites():
    """Every module holding a ``budget_tick`` binding (import-by-name)."""
    import repro.robustness.guard as guard

    sites = []
    for module in list(sys.modules.values()):
        if (module is not None
                and getattr(module, "__name__", "").startswith("repro")
                and getattr(module, "budget_tick", None) is guard.budget_tick):
            sites.append(module)
    return sites


class _StubbedTicks:
    """Temporarily replace ``budget_tick`` with a no-op everywhere."""

    def __enter__(self):
        def noop(n=1, objective=None):
            return None

        import repro.robustness.guard as guard

        # Grab the real function BEFORE patching: guard itself is one of
        # the sites, so reading it afterwards would restore the no-op.
        self._original = guard.budget_tick
        self._sites = _tick_sites()
        for module in self._sites:
            module.budget_tick = noop
        return self

    def __exit__(self, exc_type, exc, tb):
        for module in self._sites:
            module.budget_tick = self._original


def _one_fit_seconds(factory, X):
    est = factory()
    start = time.perf_counter()
    est.fit(X)
    return time.perf_counter() - start, est


def _measure_algorithm(factory, X, repeats):
    """Interleaved min-of-N timing of all four modes for one algorithm.

    The mode order rotates every round so no mode systematically pays
    the cost of its predecessor (tracemalloc teardown, cold caches),
    and GC is paused around each timed fit.
    """
    import gc

    est_box = {}
    profiler = Tracer(profile_memory=True)

    def run_stubbed():
        with _StubbedTicks():
            return _one_fit_seconds(factory, X)[0]

    def run_off():
        t, est_box["est"] = _one_fit_seconds(factory, X)
        return t

    def run_traced():
        with Tracer():
            return _one_fit_seconds(factory, X)[0]

    def run_profiled():
        with profiler:
            return _one_fit_seconds(factory, X)[0]

    modes = [("stubbed", run_stubbed), ("off", run_off),
             ("traced", run_traced), ("profiled", run_profiled)]
    times = {name: [] for name, _ in modes}
    was_enabled = gc.isenabled()
    try:
        for round_no in range(repeats):
            order = modes[round_no % 4:] + modes[:round_no % 4]
            for name, run in order:
                gc.collect()
                gc.disable()
                try:
                    times[name].append(run())
                finally:
                    if was_enabled:
                        gc.enable()
    finally:
        if was_enabled:
            gc.enable()
    peaks = [s.peak_bytes for s in profiler.spans
             if s.peak_bytes is not None]
    return ({mode: min(vals) for mode, vals in times.items()},
            est_box["est"], peaks)


def measure(repeats=5, n_samples=300):
    """Per-algorithm timings for all four modes; returns the report dict."""
    X = _data(n_samples)
    report = {
        "benchmark": "observability overhead",
        "config": {"n_samples": int(n_samples), "n_features": 8,
                   "repeats": int(repeats),
                   "timing": "min fit seconds, modes interleaved"},
        "algorithms": {},
    }
    for name, factory in ALGORITHMS:
        factory().fit(X)  # warm caches before timing anything
        best, est, peaks = _measure_algorithm(factory, X, repeats)
        stubbed = best["stubbed"]
        off = best["off"]
        traced = best["traced"]
        profiled = best["profiled"]
        entry = {
            "stubbed_s": round(stubbed, 6),
            "off_s": round(off, 6),
            "traced_s": round(traced, 6),
            "profiled_s": round(profiled, 6),
            "off_overhead_pct": round(100.0 * (off - stubbed) / stubbed, 2),
            "traced_overhead_pct": round(
                100.0 * (traced - stubbed) / stubbed, 2),
            "n_iter": int(est.n_iter_),
            "trace_len": len(est.convergence_trace_),
            "peak_kb": round(max(peaks) / 1024.0, 1) if peaks else None,
        }
        report["algorithms"][name] = entry
    offs = [a["off_overhead_pct"] for a in report["algorithms"].values()]
    report["summary"] = {
        "mean_off_overhead_pct": round(statistics.mean(offs), 2),
        "max_off_overhead_pct": round(max(offs), 2),
        "budget_pct": 2.0,
        "within_budget": statistics.mean(offs) < 2.0,
    }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=16)
    parser.add_argument("--n-samples", type=int, default=300)
    parser.add_argument("--output", type=pathlib.Path, default=OUTPUT)
    args = parser.parse_args(argv)
    report = measure(repeats=args.repeats, n_samples=args.n_samples)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    for name, entry in report["algorithms"].items():
        print(f"{name:>14}: off {entry['off_s'] * 1000:8.2f}ms "
              f"({entry['off_overhead_pct']:+5.2f}% vs stubbed), "
              f"traced {entry['traced_overhead_pct']:+5.2f}%, "
              f"peak {entry['peak_kb']}KB")
    summary = report["summary"]
    print(f"mean disabled-path overhead {summary['mean_off_overhead_pct']}% "
          f"(budget {summary['budget_pct']}%) -> "
          f"{'OK' if summary['within_budget'] else 'OVER BUDGET'}")
    print(f"wrote {args.output}")
    return 0 if summary["within_budget"] else 1


if __name__ == "__main__":
    sys.exit(main())

"""A2 — dec-kmeans lambda x restarts ablation."""

from repro.experiments import run_a2_deckmeans_restarts


def test_a2_deckmeans_restarts(benchmark, show_table):
    table = benchmark.pedantic(
        run_a2_deckmeans_restarts, kwargs={"n_seeds": 5},
        rounds=1, iterations=1,
    )
    show_table(table)
    rows = {(r["lam"], r["n_init"]): r for r in table.rows}
    assert rows[(5.0, 20)]["both_truths_rate"] > rows[(0.0, 20)][
        "both_truths_rate"]

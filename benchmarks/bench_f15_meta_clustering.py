"""F15 — meta clustering: duplication of blind generation."""

from repro.experiments import run_f15_meta_clustering


def test_f15_meta_clustering(benchmark, show_table):
    table = benchmark.pedantic(
        run_f15_meta_clustering, kwargs={"n_samples": 160, "n_base": 40},
        rounds=2, iterations=1,
    )
    show_table(table)
    rows = {r["quantity"]: r["value"] for r in table.rows}
    assert rows["duplicate pair rate (diss < 0.05)"] > 0.1

"""F6 — the curse of dimensionality (slide 12)."""

from repro.experiments import run_f6_distance_concentration


def test_f6_distance_concentration(benchmark, show_table):
    table = benchmark.pedantic(
        run_f6_distance_concentration,
        kwargs={"dims": (2, 5, 10, 20, 50, 100), "n_samples": 120},
        rounds=3, iterations=1,
    )
    show_table(table)
    contrasts = table.column("relative_contrast")
    assert contrasts[0] > contrasts[-1]

"""Microbenchmarks of the clustering substrates (library-health view)."""

import pytest

from repro.cluster import (
    Agglomerative,
    DBSCAN,
    GaussianMixtureEM,
    KernelKMeans,
    KMeans,
    KMedoids,
    SpectralClustering,
)
from repro.data import make_blobs


@pytest.fixture(scope="module")
def data():
    return make_blobs(n_samples=300, centers=4, n_features=8,
                      cluster_std=1.0, random_state=0)


@pytest.mark.parametrize("name,factory", [
    ("kmeans", lambda: KMeans(n_clusters=4, random_state=0)),
    ("kmedoids", lambda: KMedoids(n_clusters=4, random_state=0)),
    ("gmm", lambda: GaussianMixtureEM(n_components=4, random_state=0)),
    ("dbscan", lambda: DBSCAN(eps=1.5, min_pts=5)),
    ("agglomerative", lambda: Agglomerative(n_clusters=4)),
    ("spectral", lambda: SpectralClustering(n_clusters=4, random_state=0)),
    ("kernel_kmeans", lambda: KernelKMeans(n_clusters=4, random_state=0)),
])
def test_substrate_fit(benchmark, data, name, factory):
    X, _ = data
    labels = benchmark.pedantic(lambda: factory().fit(X).labels_,
                                rounds=2, iterations=1)
    assert labels.shape == (X.shape[0],)

"""F9 — redundancy of raw subspace mining vs selection models."""

from repro.experiments import run_f9_redundancy


def test_f9_redundancy(benchmark, show_table):
    table = benchmark.pedantic(
        run_f9_redundancy, kwargs={"n_samples": 240},
        rounds=1, iterations=1,
    )
    show_table(table)
    rows = {r["method"]: r for r in table.rows}
    assert rows["CLIQUE (ALL)"]["redundancy_ratio"] > \
        rows["OSCLU (select)"]["redundancy_ratio"]

"""A3 — CLIQUE grid resolution ablation."""

from repro.experiments import run_a3_grid_resolution


def test_a3_grid_resolution(benchmark, show_table):
    table = benchmark.pedantic(run_a3_grid_resolution, rounds=2,
                               iterations=1)
    show_table(table)
    f1 = {r["n_intervals"]: r["object_f1"] for r in table.rows}
    assert max(f1.values()) > f1[3]  # too-coarse grids lose objects

"""T1 — regenerate the slide-116 taxonomy comparison table."""

from repro.experiments import run_t1_taxonomy


def test_t1_taxonomy_table(benchmark, show_table):
    table = benchmark(run_t1_taxonomy)
    show_table(table)
    assert len(table.rows) >= 20

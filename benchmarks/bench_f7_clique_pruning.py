"""F7 — monotonicity pruning on the subspace lattice."""

from repro.experiments import run_f7_clique_pruning


def test_f7_clique_pruning(benchmark, show_table):
    table = benchmark.pedantic(
        run_f7_clique_pruning,
        kwargs={"feature_counts": (6, 8, 10, 12), "n_samples": 240},
        rounds=1, iterations=1,
    )
    show_table(table)
    assert all(r["identical_results"] for r in table.rows)

"""A5 — fixed vs adaptive grid on a border-straddling cluster."""

from repro.experiments import run_a5_adaptive_grid


def test_a5_adaptive_grid(benchmark, show_table):
    table = benchmark.pedantic(run_a5_adaptive_grid, rounds=2, iterations=1)
    show_table(table)
    f1 = {r["method"]: r["object_f1"] for r in table.rows}
    assert f1["MAFIA (adaptive windows)"] >= f1["CLIQUE (fixed grid)"]

"""B1 — cross-paradigm benchmark over the scenario suite."""

from repro.experiments import run_b1_cross_paradigm


def test_b1_cross_paradigm(benchmark, show_table):
    table = benchmark.pedantic(
        run_b1_cross_paradigm, kwargs={"scenarios": ("toy2", "views3")},
        rounds=1, iterations=1,
    )
    show_table(table)
    toy = [r for r in table.rows if r["scenario"] == "toy2"]
    assert all(r["recovery"] == 1.0 for r in toy)

"""A4 — base-miner runtime vs dimensionality."""

from repro.experiments import run_a4_miner_scaling


def test_a4_miner_scaling(benchmark, show_table):
    table = benchmark.pedantic(run_a4_miner_scaling, rounds=1, iterations=1)
    show_table(table)
    subclu = [r for r in table.rows if r["miner"] == "SUBCLU"]
    assert subclu[-1]["seconds"] >= subclu[0]["seconds"]

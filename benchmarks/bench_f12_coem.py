"""F12 — co-EM vs single-view EM."""

from repro.experiments import run_f12_coem


def test_f12_coem(benchmark, show_table):
    table = benchmark.pedantic(
        run_f12_coem, kwargs={"n_samples": 240},
        rounds=3, iterations=1,
    )
    show_table(table)
    rows = {r["method"]: r for r in table.rows}
    assert rows["co-EM (both views)"]["ari_vs_truth"] > 0.85

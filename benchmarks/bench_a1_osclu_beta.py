"""A1 — OSCLU concept-width beta ablation (slide 82 extremes)."""

from repro.experiments import run_a1_osclu_beta


def test_a1_osclu_beta(benchmark, show_table):
    table = benchmark(run_a1_osclu_beta)
    show_table(table)
    rows = {r["beta"]: r for r in table.rows}
    assert rows[0.4]["near_duplicate_survives"] is False
    assert rows[1.0]["near_duplicate_survives"] is True

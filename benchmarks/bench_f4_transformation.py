"""F4 — alternative clustering via learned space transformations."""

from repro.experiments import run_f4_transformation


def test_f4_transformation(benchmark, show_table):
    table = benchmark.pedantic(
        run_f4_transformation, kwargs={"n_samples": 160},
        rounds=3, iterations=1,
    )
    show_table(table)
    rows = {r["method"]: r for r in table.rows}
    assert rows["Davidson&Qi 2008 (SVD stretcher inversion)"][
        "ari_vs_secondary_truth"] > 0.9

"""F11 — ENCLUS entropy/interest of planted vs noise subspaces."""

from repro.experiments import run_f11_enclus_entropy


def test_f11_enclus_entropy(benchmark, show_table):
    table = benchmark.pedantic(
        run_f11_enclus_entropy, kwargs={"n_samples": 240},
        rounds=2, iterations=1,
    )
    show_table(table)
    planted = [r for r in table.rows if r["kind"] == "planted"]
    noise = [r for r in table.rows if r["kind"] == "noise"]
    assert min(p["interest"] for p in planted) > \
        max(n["interest"] for n in noise)

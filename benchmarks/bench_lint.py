"""Measure the full-tree cost of the repro.lint static-analysis gate.

Usage:  python benchmarks/bench_lint.py

Times one complete two-pass lint of the library in its two operating
modes — **cold** (no incremental cache: discovery + parse + all rules
+ the whole-program pass) and **warm** (a prewarmed cache: pass 1
served from disk, pass 2 live) — and, for scale, the engine's cost
components in isolation: parse-only (rules disabled) and the
single-rule RL003 run the ``check_no_print`` wrapper performs. Each
configuration is timed as the *minimum* over ``--repeats`` rounds —
the standard microbenchmark estimator for the noise-free cost — and
the rounds interleave the configurations so interpreter warm-up hits
them alike.

Writes the committed ``BENCH_lint.json`` at the repo root with two
explicit budgets: the gate runs inside tier-1 CI on every change, so a
cold run must stay under ``--budget-cold`` (default 5 s) and the warm
run every iteration loop actually experiences under ``--budget-warm``
(default 1.5 s). Exit status 1 when either is over budget.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.lint import (  # noqa: E402
    LintCache,
    LintEngine,
    all_rule_classes,
    walk_source_tree,
)

OUTPUT = ROOT / "BENCH_lint.json"


def _configurations(cache_path):
    """Name -> (engine factory, cache factory) per timed configuration."""
    return [
        ("full_cold", lambda: LintEngine(), lambda: None),
        ("full_warm", lambda: LintEngine(),
         lambda: LintCache(cache_path)),
        ("parse_only", lambda: LintEngine(rules=[]), lambda: None),
        ("rl003_only", lambda: LintEngine(select=["RL003"]),
         lambda: None),
    ]


def _one_run_seconds(factory, cache_factory, files):
    engine = factory()
    cache = cache_factory()
    start = time.perf_counter()
    report = engine.lint_paths(files, cache=cache)
    seconds = time.perf_counter() - start
    hits = cache.hits if cache is not None else 0
    return seconds, report, hits


def measure(repeats=5):
    """Min-of-N timings for each configuration; returns the report dict."""
    files = list(walk_source_tree())
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = pathlib.Path(tmp) / "lint_cache.json"
        configs = _configurations(cache_path)
        times = {name: [] for name, _, _ in configs}
        reports = {}
        hits = {}
        # warm-up round: imports, the evidence corpus, and — for the
        # warm configuration — the cache file itself
        for name, factory, cache_factory in configs:
            _one_run_seconds(factory, cache_factory, files)
        for round_no in range(repeats):
            order = configs[round_no % len(configs):] + \
                configs[:round_no % len(configs)]
            for name, factory, cache_factory in order:
                seconds, report, run_hits = _one_run_seconds(
                    factory, cache_factory, files)
                times[name].append(seconds)
                reports[name] = report
                hits[name] = run_hits
    full = reports["full_cold"]
    best = {name: min(vals) for name, vals in times.items()}
    return {
        "benchmark": "repro.lint full-tree gate",
        "config": {
            "repeats": int(repeats),
            "timing": "min seconds per configuration, rounds interleaved",
            "rules": [cls.id for cls in all_rule_classes()],
        },
        "tree": {
            "files": full.files_checked,
            "findings": len(full.findings),
            "pragma_suppressed": full.suppressed_pragma,
            "warm_cache_hits": hits["full_warm"],
        },
        "timings": {
            "full_cold_s": round(best["full_cold"], 4),
            "full_warm_s": round(best["full_warm"], 4),
            "parse_only_s": round(best["parse_only"], 4),
            "rl003_only_s": round(best["rl003_only"], 4),
            "rules_overhead_s": round(
                best["full_cold"] - best["parse_only"], 4),
            "cache_speedup": round(
                best["full_cold"] / max(best["full_warm"], 1e-9), 1),
            "ms_per_file_cold": round(1000.0 * best["full_cold"]
                                      / max(full.files_checked, 1), 3),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--budget-cold", type=float, default=5.0,
                        help="max allowed cold full-tree seconds "
                             "(default 5.0)")
    parser.add_argument("--budget-warm", type=float, default=1.5,
                        help="max allowed warm (cached) full-tree seconds "
                             "(default 1.5)")
    parser.add_argument("--no-write", action="store_true",
                        help="measure without rewriting BENCH_lint.json")
    args = parser.parse_args(argv)

    report = measure(repeats=args.repeats)
    cold_s = report["timings"]["full_cold_s"]
    warm_s = report["timings"]["full_warm_s"]
    report["summary"] = {
        "budget_cold_s": args.budget_cold,
        "budget_warm_s": args.budget_warm,
        "within_budget": (cold_s <= args.budget_cold
                          and warm_s <= args.budget_warm),
    }
    if not args.no_write:
        OUTPUT.write_text(json.dumps(report, indent=2) + "\n",
                          encoding="utf-8")
        print(f"wrote {OUTPUT}")
    print(f"full tree: {report['tree']['files']} files, "
          f"cold {cold_s:.3f}s (budget {args.budget_cold:.1f}s), "
          f"warm {warm_s:.3f}s (budget {args.budget_warm:.1f}s, "
          f"{report['tree']['warm_cache_hits']} cache hits, "
          f"{report['timings']['cache_speedup']}x) -> "
          f"{'OK' if report['summary']['within_budget'] else 'OVER BUDGET'}")
    return 0 if report["summary"]["within_budget"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Measure the full-tree cost of the repro.lint static-analysis gate.

Usage:  python benchmarks/bench_lint.py

Times one complete lint of the library (discovery + parse + all rules
over every file) and, for scale, the engine's two cost components in
isolation: parse-only (rules disabled) and the single-rule RL003 run
the ``check_no_print`` wrapper performs. Each configuration is timed as
the *minimum* over ``--repeats`` rounds — the standard microbenchmark
estimator for the noise-free cost — and the rounds interleave the
configurations so cache warm-up hits them alike.

Writes the committed ``BENCH_lint.json`` at the repo root. The budget
is ~2 s for the full tree (``--budget``): the gate runs inside tier-1
CI on every change, so it must stay cheap enough that nobody is
tempted to skip it. Exit status 1 when over budget.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.lint import (  # noqa: E402
    LintEngine,
    all_rule_classes,
    walk_source_tree,
)

OUTPUT = ROOT / "BENCH_lint.json"


def _configurations():
    """Name -> zero-arg engine factory for each timed configuration."""
    return [
        ("full", lambda: LintEngine()),
        ("parse_only", lambda: LintEngine(rules=[])),
        ("rl003_only", lambda: LintEngine(select=["RL003"])),
    ]


def _one_run_seconds(factory, files):
    engine = factory()
    start = time.perf_counter()
    report = engine.lint_paths(files)
    return time.perf_counter() - start, report


def measure(repeats=5):
    """Min-of-N timings for each configuration; returns the report dict."""
    files = list(walk_source_tree())
    configs = _configurations()
    times = {name: [] for name, _ in configs}
    reports = {}
    for name, factory in configs:  # warm caches before timing anything
        _one_run_seconds(factory, files)
    for round_no in range(repeats):
        order = configs[round_no % len(configs):] + \
            configs[:round_no % len(configs)]
        for name, factory in order:
            seconds, report = _one_run_seconds(factory, files)
            times[name].append(seconds)
            reports[name] = report
    full = reports["full"]
    best = {name: min(vals) for name, vals in times.items()}
    return {
        "benchmark": "repro.lint full-tree gate",
        "config": {
            "repeats": int(repeats),
            "timing": "min seconds per configuration, rounds interleaved",
            "rules": [cls.id for cls in all_rule_classes()],
        },
        "tree": {
            "files": full.files_checked,
            "findings": len(full.findings),
            "pragma_suppressed": full.suppressed_pragma,
        },
        "timings": {
            "full_s": round(best["full"], 4),
            "parse_only_s": round(best["parse_only"], 4),
            "rl003_only_s": round(best["rl003_only"], 4),
            "rules_overhead_s": round(best["full"] - best["parse_only"], 4),
            "ms_per_file": round(1000.0 * best["full"]
                                 / max(full.files_checked, 1), 3),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--budget", type=float, default=2.0,
                        help="max allowed full-tree seconds (default 2.0)")
    parser.add_argument("--no-write", action="store_true",
                        help="measure without rewriting BENCH_lint.json")
    args = parser.parse_args(argv)

    report = measure(repeats=args.repeats)
    full_s = report["timings"]["full_s"]
    report["summary"] = {
        "budget_s": args.budget,
        "within_budget": full_s <= args.budget,
    }
    if not args.no_write:
        OUTPUT.write_text(json.dumps(report, indent=2) + "\n",
                          encoding="utf-8")
        print(f"wrote {OUTPUT}")
    print(f"full tree: {report['tree']['files']} files in {full_s:.3f}s "
          f"({report['timings']['ms_per_file']:.2f} ms/file), "
          f"budget {args.budget:.1f}s -> "
          f"{'OK' if report['summary']['within_budget'] else 'OVER BUDGET'}")
    return 0 if report["summary"]["within_budget"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

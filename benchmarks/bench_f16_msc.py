"""F16 — mSC: HSIC penalty enforces non-redundant spectral views."""

from repro.experiments import run_f16_msc


def test_f16_msc(benchmark, show_table):
    table = benchmark.pedantic(
        run_f16_msc, kwargs={"n_samples": 150, "n_seeds": 5},
        rounds=1, iterations=1,
    )
    show_table(table)
    rows = {r["lam"]: r for r in table.rows}
    assert rows[2.0]["mean_pairwise_hsic"] < rows[0.0]["mean_pairwise_hsic"]

"""F1 — the slide-26 toy: recovering the second 2-partition."""

from repro.experiments import run_f1_toy_alternatives


def test_f1_toy_alternatives(benchmark, show_table):
    table = benchmark.pedantic(
        run_f1_toy_alternatives, kwargs={"n_samples": 160},
        rounds=3, iterations=1,
    )
    show_table(table)
    rows = {r["method"]: r for r in table.rows}
    assert rows["COALA (alt)"]["ari_vs_secondary_truth"] > 0.9

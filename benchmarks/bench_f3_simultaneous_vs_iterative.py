"""F3 — naive chaining vs conditioning on all previous solutions."""

from repro.experiments import run_f3_simultaneous_vs_iterative


def test_f3_simultaneous_vs_iterative(benchmark, show_table):
    table = benchmark.pedantic(
        run_f3_simultaneous_vs_iterative, kwargs={"n_samples": 160},
        rounds=2, iterations=1,
    )
    show_table(table)
    rows = {r["strategy"]: r for r in table.rows}
    assert rows["naive chain: C3 = alt(C2) only"][
        "min_pairwise_dissimilarity"] < 0.1

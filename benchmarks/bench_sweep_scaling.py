"""Measure sweep scaling of the work-stealing pool vs the serial path.

Usage:  python benchmarks/bench_sweep_scaling.py

Runs a fixed grid of latency-bound experiments — each body sleeps a
calibrated interval while emitting ``budget_tick`` heartbeats, the
shape of an experiment dominated by waiting (I/O, a remote service, a
GIL-released native call) rather than Python bytecode — through
``run_experiments`` at ``--jobs 1``, ``2`` and ``4``. Latency-bound
bodies make the measurement meaningful on any machine, including
single-core CI boxes where CPU-bound work cannot speed up at all; the
host's ``cpu_count`` is recorded in the artifact so the context is
explicit.

Each configuration is timed as the *minimum* over ``--repeats`` rounds
(the standard noise-free-cost estimator). The pool must deliver at
least ``--min-speedup`` (default 2.5x) at ``--jobs 4`` over the serial
path — per-worker journaling, heartbeats, and process spawning are
only acceptable if they cost a small fraction of the parallelism they
buy. Writes the committed ``BENCH_sweep_scaling.json`` at the repo
root; exit status 1 when under the floor.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.experiments.harness import ResultTable, run_experiments  # noqa: E402
from repro.robustness import budget_tick, canonical_summary  # noqa: E402

OUTPUT = ROOT / "BENCH_sweep_scaling.json"

#: Experiments in the benchmark grid.
GRID_SIZE = 8

#: Cooperative slices per experiment body; a fixed count (not a
#: wall-clock deadline) so the tick telemetry is identical at every
#: jobs level and the equivalence check below stays byte-exact.
TASK_TICKS = 50

#: Seconds each slice sleeps: TASK_TICKS * TICK_SECONDS per body.
TICK_SECONDS = 0.01

TASK_SECONDS = TASK_TICKS * TICK_SECONDS


def _make_experiment(key):
    def body():
        for _ in range(TASK_TICKS):
            budget_tick()
            time.sleep(TICK_SECONDS)
        table = ResultTable(key, ["key"])
        table.add(key=key)
        return table
    return body


def _grid():
    return {f"W{i}": _make_experiment(f"W{i}") for i in range(GRID_SIZE)}


def _one_run(jobs):
    grid = _grid()
    start = time.perf_counter()
    outcomes = run_experiments(grid, jobs=jobs, base_seed=0)
    elapsed = time.perf_counter() - start
    if not all(o.status == "ok" for o in outcomes):
        raise RuntimeError(f"benchmark sweep failed at jobs={jobs}")
    return elapsed, canonical_summary(outcomes)


def measure(repeats=3, min_speedup=2.5):
    """Min-of-N sweep timings per jobs level; returns the report dict."""
    levels = (1, 2, 4)
    times = {jobs: [] for jobs in levels}
    summaries = {}
    for round_no in range(repeats):
        for jobs in levels:
            seconds, summary = _one_run(jobs)
            times[jobs].append(seconds)
            summaries[jobs] = summary
    equivalent = len(set(summaries.values())) == 1
    best = {jobs: min(vals) for jobs, vals in times.items()}
    speedup4 = best[1] / best[4]
    return {
        "benchmark": "parallel sweep scaling (run_experiments jobs=N)",
        "config": {
            "grid_size": GRID_SIZE,
            "task_seconds": TASK_SECONDS,
            "repeats": int(repeats),
            "timing": "min seconds per jobs level, rounds interleaved",
            "workload": "latency-bound bodies (sleep + budget_tick "
                        "heartbeats), so scaling is measurable on "
                        "single-core hosts too",
            "cpu_count": os.cpu_count(),
        },
        "timings": {
            "jobs1_s": round(best[1], 4),
            "jobs2_s": round(best[2], 4),
            "jobs4_s": round(best[4], 4),
            "speedup_jobs2": round(best[1] / best[2], 2),
            "speedup_jobs4": round(speedup4, 2),
            "pool_overhead_jobs4_s": round(
                best[4] - GRID_SIZE * TASK_SECONDS / 4, 4),
        },
        "summary": {
            "min_speedup": float(min_speedup),
            "within_floor": bool(speedup4 >= min_speedup),
            "results_equivalent_across_jobs": bool(equivalent),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        help="required jobs=4 speedup over jobs=1")
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    report = measure(repeats=args.repeats, min_speedup=args.min_speedup)
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    timings = report["timings"]
    print(f"jobs=1: {timings['jobs1_s']:.3f}s   "
          f"jobs=2: {timings['jobs2_s']:.3f}s "
          f"({timings['speedup_jobs2']:.2f}x)   "
          f"jobs=4: {timings['jobs4_s']:.3f}s "
          f"({timings['speedup_jobs4']:.2f}x)")
    print(f"results equivalent across jobs levels: "
          f"{report['summary']['results_equivalent_across_jobs']}")
    print(f"wrote {out}")
    if not report["summary"]["within_floor"]:
        print(f"FAIL: jobs=4 speedup {timings['speedup_jobs4']:.2f}x "
              f"is under the {args.min_speedup}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""F5 — successive orthogonal projections peel off views."""

from repro.experiments import run_f5_orthogonal_iterations


def test_f5_orthogonal_iterations(benchmark, show_table):
    table = benchmark.pedantic(
        run_f5_orthogonal_iterations, kwargs={"n_samples": 240},
        rounds=3, iterations=1,
    )
    show_table(table)
    aris = table.column("best_view_ari")
    assert aris[0] > 0.9
